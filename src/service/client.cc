#include "service/client.hh"

#include <algorithm>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "window/window_plan.hh"
#include "window/windowed_runner.hh"

namespace shotgun
{
namespace service
{

using json::Value;

ServiceClient::ServiceClient(const std::string &endpoint_spec,
                             unsigned timeout_seconds)
    : endpoint_(endpoint_spec),
      timeoutSeconds_(timeout_seconds),
      channel_(connectTo(Endpoint::parse(endpoint_spec)))
{
    if (timeoutSeconds_ != 0)
        channel_.socket().setRecvTimeout(timeoutSeconds_ * 1000u);
}

std::string
ServiceClient::recvLineOrThrow()
{
    std::string line;
    if (channel_.recvLine(line))
        return line;
    if (channel_.timedOut())
        throw SocketError(
            "server " + endpoint_ + " sent nothing for " +
            std::to_string(timeoutSeconds_) +
            "s (stalled or wedged?); raise --timeout for very long "
            "grid points");
    throw SocketError("server " + endpoint_ +
                      " closed the connection");
}

json::Value
ServiceClient::request(const json::Value &frame)
{
    if (!channel_.sendLine(frame.dump()))
        throw SocketError("send to " + endpoint_ + " failed");
    Value reply = Value::parse(recvLineOrThrow());
    if (frameType(reply) == "error")
        throw ServiceError(endpoint_ + ": " +
                           reply.at("message").asString());
    return reply;
}

std::vector<SimResult>
ServiceClient::submit(
    const SubmitRequest &request_data,
    const std::function<void(const ResultEvent &)> &on_result)
{
    const Value accepted = request(encodeSubmit(request_data));
    if (frameType(accepted) != "accepted")
        throw ServiceError(endpoint_ + ": expected `accepted`, got `" +
                           frameType(accepted) + "`");
    const std::uint64_t job = accepted.at("job").asU64();
    const std::uint64_t total = accepted.at("total").asU64();
    if (total != request_data.grid.size())
        throw ServiceError(endpoint_ +
                           ": server accepted a different grid size");

    std::vector<SimResult> results(request_data.grid.size());
    std::vector<char> seen(request_data.grid.size(), 0);
    std::uint64_t received = 0;

    while (true) {
        const Value frame = Value::parse(recvLineOrThrow());
        const std::string type = frameType(frame);
        if (type == "result") {
            ResultEvent event = decodeResultEvent(frame);
            if (event.job != job)
                continue; // Another interleaved job's stream.
            if (event.index >= results.size() || seen[event.index])
                throw ServiceError(endpoint_ +
                                   ": bad result index " +
                                   std::to_string(event.index));
            results[event.index] = event.result;
            seen[event.index] = 1;
            ++received;
            if (on_result)
                on_result(event);
        } else if (type == "done") {
            const DoneEvent done = decodeDone(frame);
            if (done.job != job)
                continue;
            if (done.status != "ok") {
                const std::string what =
                    endpoint_ + ": job " + std::to_string(job) + " " +
                    done.status +
                    (done.message.empty() ? "" : ": " + done.message);
                // "error" is the job's own deterministic failure;
                // "cancelled" (e.g. the server shutting down under
                // it) is the worker's.
                if (done.status == "error")
                    throw JobFailedError(what);
                throw ServiceError(what);
            }
            if (received != results.size())
                throw ServiceError(endpoint_ + ": job " +
                                   std::to_string(job) +
                                   " done after " +
                                   std::to_string(received) + "/" +
                                   std::to_string(results.size()) +
                                   " results");
            return results;
        } else if (type == "error") {
            throw ServiceError(endpoint_ + ": " +
                               frame.at("message").asString());
        }
        // Ignore unrelated frame types (forward compatibility).
    }
}

json::Value
ServiceClient::status()
{
    Value reply = request(makeFrame("status"));
    if (frameType(reply) != "status")
        throw ServiceError(endpoint_ + ": expected `status` reply");
    return reply;
}

bool
ServiceClient::ping()
{
    return frameType(request(makeFrame("ping"))) == "pong";
}

void
ServiceClient::cancel(std::uint64_t job)
{
    Value frame = makeFrame("cancel");
    frame.set("job", Value::number(job));
    (void)request(frame);
}

void
ServiceClient::shutdownServer()
{
    Value reply = request(makeFrame("shutdown"));
    if (frameType(reply) != "bye")
        throw ServiceError(endpoint_ + ": expected `bye` reply");
}

namespace
{

/** Shared ledger of a sharded run; the mutex guards everything. */
struct ShardedState
{
    std::mutex mutex;
    std::vector<SimResult> results;
    std::vector<char> done;
    std::size_t delivered = 0;
};

std::string
describeFailure(std::exception_ptr error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

/**
 * Moves the working ledger into the caller's ShardedOptions.outcomes
 * on destruction, so the per-worker accounting survives every exit
 * path -- including the rethrow when the whole fleet dies, which is
 * exactly when the caller needs the ledger to explain the failure.
 */
struct LedgerPublisher
{
    std::vector<ShardOutcome> *dest;
    std::vector<ShardOutcome> *source;

    ~LedgerPublisher()
    {
        if (dest != nullptr)
            *dest = std::move(*source);
    }
};

} // namespace

std::vector<SimResult>
submitSharded(const std::vector<std::string> &endpoints,
              const SubmitRequest &request,
              const ShardedOptions &options)
{
    if (endpoints.empty())
        throw ServiceError("no worker endpoints given");

    const std::size_t total = request.grid.size();
    const std::size_t workers = endpoints.size();

    std::vector<ShardOutcome> outcomes(workers);
    for (std::size_t w = 0; w < workers; ++w)
        outcomes[w].endpoint = endpoints[w];
    LedgerPublisher publish{options.outcomes, &outcomes};
    std::vector<char> alive(workers, 1);

    // Initial round-robin assignment: experiment i -> worker i mod W.
    std::vector<std::vector<std::size_t>> assigned(workers);
    for (std::size_t i = 0; i < total; ++i)
        assigned[i % workers].push_back(i);
    for (std::size_t w = 0; w < workers; ++w)
        outcomes[w].assigned = assigned[w].size();

    ShardedState state;
    state.results.resize(total);
    state.done.assign(total, 0);

    std::exception_ptr first_failure;

    // Each round submits every live worker's pending points on its
    // own thread. Workers that fail are marked dead and their
    // undelivered points redistributed across the survivors; the
    // loop ends when everything was delivered or everyone is dead.
    while (true) {
        std::vector<std::size_t> active;
        for (std::size_t w = 0; w < workers; ++w) {
            if (!alive[w])
                continue;
            auto &mine = assigned[w];
            mine.erase(std::remove_if(mine.begin(), mine.end(),
                                      [&state](std::size_t i) {
                                          return state.done[i] != 0;
                                      }),
                       mine.end());
            if (!mine.empty())
                active.push_back(w);
        }
        if (active.empty())
            break;

        std::vector<std::exception_ptr> failures(workers);
        std::vector<std::thread> threads;
        threads.reserve(active.size());
        for (const std::size_t w : active) {
            threads.emplace_back([&, w]() {
                try {
                    SubmitRequest shard;
                    shard.experiment = request.experiment;
                    shard.jobs = request.jobs;
                    shard.priority = request.priority;
                    // The trace ref rides on every shard so a traced
                    // submit stays one trace across workers.
                    shard.traceId = request.traceId;
                    shard.parentSpan = request.parentSpan;
                    const std::vector<std::size_t> &origin =
                        assigned[w];
                    shard.grid.reserve(origin.size());
                    for (const std::size_t i : origin)
                        shard.grid.push_back(request.grid[i]);
                    ServiceClient client(endpoints[w],
                                         options.timeoutSeconds);
                    client.submit(
                        shard, [&](const ResultEvent &event) {
                            // Harvest every streamed point as it
                            // arrives: if this worker dies later,
                            // its delivered results are kept and
                            // only the remainder is redistributed.
                            const std::size_t grid_index =
                                origin[event.index];
                            std::lock_guard<std::mutex> lock(
                                state.mutex);
                            state.results[grid_index] =
                                event.result;
                            state.done[grid_index] = 1;
                            ++outcomes[w].delivered;
                            // Under the ledger lock: onProgress /
                            // onEvent calls are serialized and the
                            // `done` counts monotone, whichever
                            // shard delivered the point.
                            if (options.onEvent)
                                options.onEvent(grid_index, event);
                            if (options.onProgress)
                                options.onProgress(++state.delivered,
                                                   total);
                        });
                } catch (...) {
                    failures[w] = std::current_exception();
                }
            });
        }
        for (auto &thread : threads)
            thread.join();

        // A deterministic job failure (a grid point whose simulation
        // throws) would fail identically on every worker:
        // redistributing it would serially "kill" the whole healthy
        // fleet before reporting the same error. Fail fast instead.
        for (const std::size_t w : active) {
            if (failures[w] == nullptr)
                continue;
            try {
                std::rethrow_exception(failures[w]);
            } catch (const JobFailedError &) {
                throw;
            } catch (...) {
                // Transport/worker death: handled below.
            }
        }

        // Bury the dead and redistribute their undelivered points.
        std::vector<std::size_t> orphans;
        for (const std::size_t w : active) {
            if (failures[w] == nullptr)
                continue;
            alive[w] = 0;
            if (first_failure == nullptr)
                first_failure = failures[w];
            outcomes[w].error = describeFailure(failures[w]);
            for (const std::size_t i : assigned[w]) {
                if (state.done[i] == 0) {
                    orphans.push_back(i);
                    ++outcomes[w].retried;
                }
            }
            assigned[w].clear();
        }
        if (orphans.empty())
            break;

        std::vector<std::size_t> survivors;
        for (std::size_t w = 0; w < workers; ++w) {
            if (alive[w])
                survivors.push_back(w);
        }
        if (survivors.empty())
            std::rethrow_exception(first_failure);
        for (std::size_t k = 0; k < orphans.size(); ++k) {
            const std::size_t w = survivors[k % survivors.size()];
            assigned[w].push_back(orphans[k]);
            ++outcomes[w].assigned;
        }
    }

    for (std::size_t i = 0; i < total; ++i) {
        if (state.done[i] == 0) {
            // Unreachable in practice: every exit above either
            // delivered everything or rethrew. Guard anyway so a
            // logic error can never stitch a half-empty vector.
            if (first_failure != nullptr)
                std::rethrow_exception(first_failure);
            throw ServiceError("sharded submit lost grid point " +
                               std::to_string(i));
        }
    }
    return std::move(state.results);
}

std::vector<SimResult>
submitSharded(
    const std::vector<std::string> &endpoints,
    const SubmitRequest &request,
    const std::function<void(std::size_t done, std::size_t total)>
        &on_progress)
{
    ShardedOptions options;
    options.onProgress = on_progress;
    return submitSharded(endpoints, request, options);
}

std::vector<SimResult>
submitWindowSharded(const std::vector<std::string> &endpoints,
                    const SubmitRequest &request,
                    unsigned window_shards,
                    const ShardedOptions &options)
{
    fatal_if(window_shards == 0,
             "window sharding needs at least 1 window");

    // Expand each experiment into its full-coverage windows; the
    // expanded grid is an ordinary submission, so assignment,
    // harvesting and dead-worker redistribution all operate on
    // windows with no new machinery.
    SubmitRequest expanded;
    expanded.experiment = request.experiment;
    expanded.jobs = request.jobs;
    expanded.priority = request.priority;
    expanded.traceId = request.traceId;
    expanded.parentSpan = request.parentSpan;
    std::vector<std::size_t> owner; // expanded index -> grid index
    for (std::size_t i = 0; i < request.grid.size(); ++i) {
        const runner::Experiment &exp = request.grid[i];
        fatal_if(exp.config.window.enabled(),
                 "experiment %s/%s already has a window; window "
                 "sharding splits whole runs",
                 exp.workload.c_str(), exp.label.c_str());
        const window::WindowPlan plan =
            window::contiguousPlan(exp.config, window_shards);
        for (runner::Experiment &sub :
             window::expandExperiment(exp, plan)) {
            owner.push_back(i);
            expanded.grid.push_back(std::move(sub));
        }
    }

    // Harvest raw deltas per expanded point (onEvent runs under the
    // sharded ledger lock: serialized, once per point).
    std::vector<SimulationDelta> deltas(expanded.grid.size());
    std::vector<char> have(expanded.grid.size(), 0);
    ShardedOptions inner = options;
    inner.onEvent = [&deltas, &have,
                     &options](std::size_t index,
                               const ResultEvent &event) {
        if (event.hasDelta) {
            SimulationDelta &delta = deltas[index];
            delta.workload = event.result.workload;
            delta.scheme = event.result.scheme;
            delta.schemeStorageBits = event.result.schemeStorageBits;
            delta.stats = event.delta;
            have[index] = 1;
        }
        if (options.onEvent)
            options.onEvent(index, event);
    };
    submitSharded(endpoints, expanded, inner);

    for (std::size_t i = 0; i < have.size(); ++i) {
        if (have[i] == 0)
            throw ServiceError(
                "window " + expanded.grid[i].label + " of \"" +
                expanded.grid[i].workload +
                "\" came back without its raw delta (worker too "
                "old for windowed results?)");
    }

    // Stitch each experiment's windows, in window order.
    std::vector<SimResult> results(request.grid.size());
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < request.grid.size(); ++i) {
        std::vector<SimulationDelta> windows;
        windows.reserve(window_shards);
        while (cursor < owner.size() && owner[cursor] == i)
            windows.push_back(std::move(deltas[cursor++]));
        results[i] = window::stitchWindows(windows);
    }
    return results;
}

} // namespace service
} // namespace shotgun
