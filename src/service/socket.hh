/**
 * @file
 * Tiny portable stream-socket wrapper for the simulation service:
 * endpoints ("unix:<path>" or "<host>:<port>"), RAII sockets, a
 * listener, and a line channel for the newline-delimited JSON frame
 * protocol. POSIX only (the project targets Linux; the socket calls
 * used -- socket/bind/listen/accept/connect/send/recv -- are the
 * portable core that a WinSock port would wrap 1:1).
 *
 * Errors throw SocketError rather than calling fatal(): the server
 * must survive a peer resetting a connection, and the tools translate
 * the exception into a clean fatal() at top level.
 */

#ifndef SHOTGUN_SERVICE_SOCKET_HH
#define SHOTGUN_SERVICE_SOCKET_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace shotgun
{
namespace service
{

struct SocketError : std::runtime_error
{
    explicit SocketError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A service address. Two forms:
 *  - "unix:<path>"  -- a Unix-domain stream socket;
 *  - "<host>:<port>" -- TCP (host resolved via getaddrinfo; port 0
 *    asks the kernel for a free port, see Listener::boundEndpoint()).
 */
struct Endpoint
{
    enum class Kind
    {
        Tcp,
        Unix,
    };

    Kind kind = Kind::Tcp;
    std::string host; ///< TCP only.
    std::uint16_t port = 0;
    std::string path; ///< Unix only.

    /** Parse a spec; throws SocketError on a malformed one. */
    static Endpoint parse(const std::string &spec);

    /** Canonical spec string ("unix:/run/x.sock", "127.0.0.1:7401"). */
    std::string str() const;
};

/** Move-only RAII socket. A default-constructed socket is invalid. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** recvSome() return value when the receive deadline expired. */
    static constexpr long kTimedOut = -2;

    /** Send the whole buffer; false on error (SIGPIPE suppressed). */
    bool sendAll(const char *data, std::size_t size);

    /**
     * One recv(); 0 on orderly EOF, kTimedOut when a receive
     * deadline (setRecvTimeout) expired with no data, -1 on error.
     */
    long recvSome(char *data, std::size_t size);

    /**
     * Arm a receive deadline (SO_RCVTIMEO): a recv with no data for
     * `milliseconds` returns kTimedOut instead of blocking forever.
     * 0 disarms. False when setsockopt failed.
     */
    bool setRecvTimeout(unsigned milliseconds);

    /** shutdown(2) both directions -- unblocks a reader elsewhere. */
    void shutdownBoth();

    /**
     * shutdown(2) the receive direction only: unblocks a reader
     * elsewhere while this side can still send a final frame (e.g. a
     * cancelled `done` during coordinator shutdown).
     */
    void shutdownRead();

    void close();

  private:
    int fd_ = -1;
};

/** Bound + listening server socket. */
class Listener
{
  public:
    /**
     * Bind and listen; throws SocketError (EADDRINUSE, bad path...).
     * A pre-existing Unix socket file is unlinked first: it is either
     * a stale leftover (bind would fail pointlessly) or a live server
     * the operator asked us to replace.
     */
    explicit Listener(const Endpoint &endpoint, int backlog = 16);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Accept one connection; an invalid Socket after
     * shutdownListener()/close() (the shutdown path) or on a
     * transient accept failure. Waits in poll(2) on the listening
     * socket *and* an internal wake pipe, so a concurrent
     * shutdownListener() interrupts a blocked accept deterministically
     * -- shutdown(2) on a listening socket alone is not a portable
     * wakeup, and a daemon with a connected-but-idle client must
     * still stop promptly.
     */
    Socket accept();

    /** The actual bound address (resolves TCP port 0). */
    const Endpoint &boundEndpoint() const { return bound_; }

    /**
     * Unblock a concurrent accept() (it returns an invalid Socket)
     * without closing the file descriptor: writes the wake pipe and
     * shuts the listening socket down. This is the only member safe
     * to call from another thread while accept() runs: close()
     * would free the fd under accept's feet (data race + the fd
     * number could be recycled by a concurrent open).
     */
    void shutdownListener();

    /**
     * Close the listening socket and remove a Unix socket file. Not
     * thread-safe against a concurrent accept() -- call after the
     * accept loop exited (the destructor's job in normal use).
     */
    void close();

  private:
    Socket sock_;
    Endpoint bound_;
    std::string unlinkPath_; ///< Unix socket file to remove.
    int wakeRead_ = -1;      ///< Wake pipe, read end (poll target).
    int wakeWrite_ = -1;     ///< Wake pipe, write end.
};

/** Connect to an endpoint; throws SocketError on failure. */
Socket connectTo(const Endpoint &endpoint);

/**
 * Line-oriented channel over a socket: the transport of the
 * newline-delimited JSON frame protocol. recvLine() strips the
 * trailing '\n' and rejects lines over 64 MiB (a malformed or
 * malicious peer must not OOM the server).
 */
class LineChannel
{
  public:
    LineChannel() = default;
    explicit LineChannel(Socket sock) : sock_(std::move(sock)) {}

    bool valid() const { return sock_.valid(); }
    Socket &socket() { return sock_; }

    /** False on EOF/error/timeout; timedOut() tells which. */
    bool recvLine(std::string &line);

    /**
     * True when the last failed recvLine() hit the socket's receive
     * deadline (setRecvTimeout) rather than EOF or a transport
     * error -- the caller can report "server stalled" instead of
     * "connection closed".
     */
    bool timedOut() const { return timedOut_; }

    /** Appends '\n'; false on send failure. */
    bool sendLine(const std::string &line);

  private:
    static constexpr std::size_t kMaxLine = 64u << 20;

    Socket sock_;
    std::string buffer_;
    bool timedOut_ = false;
};

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_SOCKET_HH
