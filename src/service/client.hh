/**
 * @file
 * Client side of the simulation service: submit an experiment grid to
 * one server and stream its results, or shard a grid across several
 * servers (`--workers` mode) with deterministic index-aligned
 * stitching -- experiment i goes to worker i mod W, every result is
 * placed back at index i, so the assembled vector is bitwise-identical
 * to running the grid in one process, no matter how many workers or
 * how their finish times interleave.
 *
 * Fault tolerance: every receive is bounded by a socket deadline (a
 * wedged server fails the call with a clear timeout error instead of
 * hanging the client forever), and submitSharded() survives worker
 * death -- a failed worker's undelivered points are redistributed
 * round-robin across the surviving workers (results it already
 * streamed are kept), with per-worker retry accounting. Only when
 * every worker is dead does the first failure propagate.
 */

#ifndef SHOTGUN_SERVICE_CLIENT_HH
#define SHOTGUN_SERVICE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

#include "runner/experiment.hh"
#include "service/protocol.hh"
#include "service/socket.hh"

namespace shotgun
{
namespace service
{

/** Server-reported failure (error frame / unexpected disconnect). */
struct ServiceError : std::runtime_error
{
    explicit ServiceError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The job itself failed (`done` status "error"): a simulation threw
 * on the server. Deterministic -- the same grid point fails on any
 * worker -- so submitSharded() rethrows it immediately instead of
 * redistributing the shard and failing every healthy worker in turn.
 */
struct JobFailedError : ServiceError
{
    explicit JobFailedError(const std::string &what)
        : ServiceError(what)
    {
    }
};

/**
 * Default receive deadline: generous because a single grid point is
 * legitimately minutes of simulation with no frame traffic, but
 * finite so a wedged daemon cannot hang a client forever.
 */
constexpr unsigned kDefaultTimeoutSeconds = 600;

class ServiceClient
{
  public:
    /**
     * Connect; throws SocketError when the server is unreachable.
     * `timeout_seconds` bounds every receive: when the server sends
     * nothing for that long the pending call throws SocketError
     * with a timeout message (0 disables the deadline).
     */
    explicit ServiceClient(
        const std::string &endpoint_spec,
        unsigned timeout_seconds = kDefaultTimeoutSeconds);

    const std::string &endpoint() const { return endpoint_; }

    /**
     * Submit a grid and block until its `done` frame. Returns the
     * results index-aligned with `request.grid`; `on_result` (when
     * set) observes each streamed point as it arrives, in grid
     * order. Throws ServiceError when the server rejects the submit,
     * reports a failed job, or disconnects mid-stream, and
     * SocketError on transport failure or receive timeout.
     */
    std::vector<SimResult>
    submit(const SubmitRequest &request,
           const std::function<void(const ResultEvent &)> &on_result =
               {});

    /** The server's `status` frame (decoded JSON). */
    json::Value status();

    /** True when the server answered the ping. */
    bool ping();

    /** Ask a job to cancel (best-effort). */
    void cancel(std::uint64_t job);

    /** Send `shutdown`; returns once the server acknowledged. */
    void shutdownServer();

  private:
    json::Value request(const json::Value &frame);
    std::string recvLineOrThrow();

    std::string endpoint_;
    unsigned timeoutSeconds_ = 0;
    LineChannel channel_;
};

/** One worker's ledger from a submitSharded() run. */
struct ShardOutcome
{
    std::string endpoint;
    std::size_t assigned = 0;  ///< Points routed here (incl. retries).
    std::size_t delivered = 0; ///< Results this worker streamed.
    std::size_t retried = 0; ///< Points moved to survivors after death.
    std::string error; ///< First failure message; empty = healthy.
};

struct ShardedOptions
{
    /** Ticks once per first-time delivered point; calls are
     * serialized and `done` is monotone, whichever shard thread
     * delivered the point. */
    std::function<void(std::size_t done, std::size_t total)>
        onProgress;

    /**
     * Observes each first-time delivered point's full ResultEvent
     * (with `grid_index` mapped back to the submitted grid). Calls
     * are serialized; a point re-delivered after a worker death is
     * reported once. Window sharding uses this to harvest the raw
     * per-window deltas the stitcher needs.
     */
    std::function<void(std::size_t grid_index,
                       const ResultEvent &event)>
        onEvent;

    /** Per-connection receive deadline (0 disables). */
    unsigned timeoutSeconds = kDefaultTimeoutSeconds;

    /** When set, receives one ledger per endpoint (input order). */
    std::vector<ShardOutcome> *outcomes = nullptr;
};

/**
 * Run a grid across one or more servers. With several endpoints,
 * experiment i is initially submitted to endpoint i mod W
 * (round-robin keeps per-workload clusters spread) and the shards
 * run concurrently, one thread per worker.
 *
 * A worker that fails (connect failure, death mid-grid, timeout) is
 * marked dead and its undelivered points are redistributed
 * round-robin across the surviving workers -- results it streamed
 * before dying are kept, never recomputed. The grid completes, with
 * stitching still index-aligned and byte-identical to an in-process
 * run, as long as one worker survives; the first failure is rethrown
 * only when every worker is dead.
 */
std::vector<SimResult> submitSharded(
    const std::vector<std::string> &endpoints,
    const SubmitRequest &request, const ShardedOptions &options);

/** Convenience overload: progress callback only. */
std::vector<SimResult> submitSharded(
    const std::vector<std::string> &endpoints,
    const SubmitRequest &request,
    const std::function<void(std::size_t done, std::size_t total)>
        &on_progress = {});

/**
 * Run a grid with each experiment split into `window_shards`
 * full-coverage windows distributed across the workers (finer-
 * grained than per-config sharding: one heavy workload parallelizes
 * across machines). Every window is an ordinary grid point of the
 * expanded wire grid, so the submitSharded() machinery above --
 * round-robin assignment, streamed-result harvesting, dead-worker
 * redistribution -- applies unchanged to windows: a window lost with
 * its worker is re-simulated on a survivor and the stitch does not
 * change, which keeps the returned vector (index-aligned with
 * `request.grid`) numerically identical to running each experiment
 * monolithically, as long as one worker survives.
 *
 * onProgress/onEvent tick per *window*; `outcomes` ledgers count
 * windows too. Throws like submitSharded(); additionally fatal() on
 * window_shards == 0 or a grid point too short to split.
 */
std::vector<SimResult> submitWindowSharded(
    const std::vector<std::string> &endpoints,
    const SubmitRequest &request, unsigned window_shards,
    const ShardedOptions &options);

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_CLIENT_HH
