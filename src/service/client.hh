/**
 * @file
 * Client side of the simulation service: submit an experiment grid to
 * one server and stream its results, or shard a grid across several
 * servers (`--workers` mode) with deterministic index-aligned
 * stitching -- experiment i goes to worker i mod W, every result is
 * placed back at index i, so the assembled vector is bitwise-identical
 * to running the grid in one process, no matter how many workers or
 * how their finish times interleave.
 */

#ifndef SHOTGUN_SERVICE_CLIENT_HH
#define SHOTGUN_SERVICE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

#include "runner/experiment.hh"
#include "service/protocol.hh"
#include "service/socket.hh"

namespace shotgun
{
namespace service
{

/** Server-reported failure (error frame / unexpected disconnect). */
struct ServiceError : std::runtime_error
{
    explicit ServiceError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

class ServiceClient
{
  public:
    /** Connect; throws SocketError when the server is unreachable. */
    explicit ServiceClient(const std::string &endpoint_spec);

    const std::string &endpoint() const { return endpoint_; }

    /**
     * Submit a grid and block until its `done` frame. Returns the
     * results index-aligned with `request.grid`; `on_result` (when
     * set) observes each streamed point as it arrives, in grid
     * order. Throws ServiceError when the server rejects the submit,
     * reports a failed job, or disconnects mid-stream, and
     * SocketError on transport failure.
     */
    std::vector<SimResult>
    submit(const SubmitRequest &request,
           const std::function<void(const ResultEvent &)> &on_result =
               {});

    /** The server's `status` frame (decoded JSON). */
    json::Value status();

    /** True when the server answered the ping. */
    bool ping();

    /** Ask a job to cancel (best-effort). */
    void cancel(std::uint64_t job);

    /** Send `shutdown`; returns once the server acknowledged. */
    void shutdownServer();

  private:
    json::Value request(const json::Value &frame);

    std::string endpoint_;
    LineChannel channel_;
};

/**
 * Run a grid across one or more servers. With one endpoint this is
 * ServiceClient::submit; with several, experiment i is submitted to
 * endpoint i mod W (round-robin keeps per-workload clusters spread)
 * and the shards run concurrently, one thread per worker.
 *
 * `on_progress(done, total)` ticks once per completed point, from
 * whichever shard delivered it (thread-safe internally).
 *
 * Every shard failure is collected; the first failure is rethrown
 * after all shard threads joined.
 */
std::vector<SimResult> submitSharded(
    const std::vector<std::string> &endpoints,
    const SubmitRequest &request,
    const std::function<void(std::size_t done, std::size_t total)>
        &on_progress = {});

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_CLIENT_HH
