/**
 * @file
 * The shotgun-serve wire protocol: newline-delimited JSON frames over
 * a stream socket (TCP or Unix). Every frame is one line, one JSON
 * object, with a "type" member. See src/service/README.md for the
 * full grammar and an example session.
 *
 * Client -> server:
 *   {"type":"submit","protocol":2,"experiment":...,"jobs":N,
 *    "grid":[{"workload":...,"label":...,"via_baseline_cache":b,
 *             "config":{...}},...]}
 *   {"type":"status"}          {"type":"cancel","job":N}
 *   {"type":"ping"}            {"type":"shutdown"}
 *
 * Server -> client:
 *   {"type":"accepted","job":N,"total":N,"fingerprints":[...]}
 *   {"type":"result","job":N,"index":N,"cached":b,
 *    "workload":...,"label":...,"fingerprint":...,"result":{...}
 *    [,"delta":{...}]}
 *   {"type":"done","job":N,"status":"ok|cancelled|error",
 *    "completed":N,"cached":N[,"message":...]}
 *   {"type":"status","server":{...},"jobs":[...]}
 *   {"type":"pong"}  {"type":"bye"}  {"type":"error","message":...}
 *
 * Protocol 2 (windowed simulation): every config carries a "window"
 * member ({"skip_instructions","measure_start","measure_end"}, all 0
 * when disabled), and the `result` frame of a windowed grid point
 * additionally carries "delta" -- the window's raw counters
 * (sim/stats_delta.hh) -- so clients stitch windows from exact
 * integers rather than derived doubles.
 *
 * Protocol 3 (fleet): `submit` gains an optional "priority" (the
 * job's fair-share weight against concurrently admitted jobs,
 * default 1), and the coordinator<->worker frames below join the
 * grammar. A worker holds one *control* connection (register,
 * then periodic heartbeats) and one *work* connection per slot
 * (attach, then a steal -> work -> result loop). See
 * src/fleet/README.md for the full fleet protocol spec.
 *
 * Worker -> coordinator (control):
 *   {"type":"register","protocol":3,"name":...,"slots":N}
 *     -> {"type":"ack","worker":N}
 *   {"type":"heartbeat","worker":N,"completed":N,
 *    "cache":{"hits":N,"misses":N,"backend_hits":N}}
 *     -> {"type":"ack"}
 *
 * Worker -> coordinator (one per slot):
 *   {"type":"attach","worker":N}            -> {"type":"ack"}
 *   {"type":"steal","worker":N}             -> (parked until work)
 *     <- {"type":"work","task":N,"experiment":{...}}
 *   {"type":"result","task":N,"ok":b,"cached":b,
 *    "fingerprint":...,"result":{...}[,"delta":{...}]
 *    [,"message":...]}                      -> (next steal)
 *
 * A coordinator answers the ordinary client `status` frame with an
 * additional "fleet" member: per-worker rows (encodeWorkerStatus)
 * plus queue depths and cache counters.
 *
 * Tracing fields (all OPTIONAL -- the protocol version stays 3 and
 * peers without them interoperate unchanged): `submit` and `work`
 * may carry {"trace":{"id":N,"parent":N}} propagating a run-wide
 * trace id and parent span id (submit -> coordinator -> worker);
 * `result` frames (both the worker->coordinator and server->client
 * kinds) may carry "spans" (an array of obs::SpanRecord objects
 * recorded while the point simulated) and "timing" (the per-point
 * phase breakdown in microseconds), which is how one fleet run
 * assembles a single cross-process trace; `heartbeat` and worker
 * status rows may carry "phase" totals (the always-on per-phase
 * counters behind `--fleet-status`'s breakdown table). See
 * src/obs/README.md.
 *
 * This header provides typed encode/decode for the structured frames;
 * trivial frames (ping/pong/bye/attach/steal/ack/...) are built
 * inline where used. Decoding throws CodecError/JsonError on
 * malformed frames.
 */

#ifndef SHOTGUN_SERVICE_PROTOCOL_HH
#define SHOTGUN_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "obs/trace.hh"
#include "runner/experiment.hh"
#include "service/codec.hh"

namespace shotgun
{
namespace service
{

/** Bumped on any incompatible frame-layout change. */
constexpr std::uint64_t kProtocolVersion = 3;

/** A grid submission: the wire form of a runner::ExperimentSet. */
struct SubmitRequest
{
    std::string experiment; ///< Sweep name (result-sink header).

    /** Worker threads for this job; 0 = server default; the server
     * additionally clamps to its --jobs cap. */
    std::uint64_t jobs = 0;

    /**
     * Fair-share weight against other admitted jobs: a priority-3
     * job is dispatched three points per priority-1 job's one (see
     * runner/grid_scheduler.hh). 0 is clamped to 1 server-side.
     */
    std::uint64_t priority = 1;

    std::vector<runner::Experiment> grid;

    /**
     * Optional tracing context ("trace" member, absent when 0): the
     * run-wide trace id every process's spans share, and the
     * client-side root span new server spans parent to.
     */
    std::uint64_t traceId = 0;
    std::uint64_t parentSpan = 0;
};

json::Value encodeSubmit(const SubmitRequest &request);
SubmitRequest decodeSubmit(const json::Value &frame);

/** One streamed result, index-aligned with the submitted grid. */
struct ResultEvent
{
    std::uint64_t job = 0;
    std::uint64_t index = 0;
    bool cached = false; ///< Served from the fingerprint cache.
    std::string workload;
    std::string label;
    std::string fingerprint;
    SimResult result;

    /**
     * Raw window counters, present exactly when the grid point's
     * config had a window: what submitWindowSharded() stitches.
     */
    bool hasDelta = false;
    StatsDelta delta;

    /**
     * Optional tracing payload ("spans"/"timing" members, absent
     * when the point was untraced): the spans recorded while this
     * point simulated and its per-phase timing breakdown.
     */
    std::vector<obs::SpanRecord> spans;
    bool hasTiming = false;
    obs::PointTiming timing;
};

json::Value encodeResultEvent(const ResultEvent &event);
ResultEvent decodeResultEvent(const json::Value &frame);

/** Terminal job states reported in `done` frames. */
struct DoneEvent
{
    std::uint64_t job = 0;
    std::string status; ///< "ok", "cancelled" or "error".
    std::uint64_t completed = 0;
    std::uint64_t cached = 0;
    std::string message; ///< Failure detail for "error".
};

json::Value encodeDone(const DoneEvent &event);
DoneEvent decodeDone(const json::Value &frame);

/** One job's row in a `status` frame. */
struct JobStatus
{
    std::uint64_t id = 0;
    std::string experiment;
    std::string state; ///< queued/running/ok/cancelled/error.
    std::uint64_t total = 0;
    std::uint64_t completed = 0;
    std::uint64_t cached = 0;

    /** Scheduler worker budget; absent in pre-0.5 frames. */
    std::uint64_t budget = 0;
};

json::Value encodeJobStatus(const JobStatus &status);
JobStatus decodeJobStatus(const json::Value &v);

// ---------------------------------------------------- fleet frames

/**
 * Worker enrollment, first frame on a worker's control connection.
 * Carries the protocol version (checked like submit: a mismatched
 * worker is rejected, not silently mis-fed).
 */
struct RegisterRequest
{
    std::string name;         ///< Operator-facing worker name.
    std::uint64_t slots = 1;  ///< Concurrent simulation slots.
};

json::Value encodeRegister(const RegisterRequest &request);
RegisterRequest decodeRegister(const json::Value &frame);

/** Periodic liveness proof plus the worker's local cache counters. */
struct HeartbeatFrame
{
    std::uint64_t worker = 0;
    std::uint64_t completed = 0; ///< Points finished since register.
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t backendHits = 0; ///< Served by the disk cache.

    // The worker's warmed-state checkpoint store (sim/checkpoint.hh):
    // hits are restored warmups, misses are warmups simulated.
    std::uint64_t checkpointHits = 0;
    std::uint64_t checkpointMisses = 0;

    // Always-on per-phase wall-clock totals from the worker's
    // sim.phase.* registry counters ("phase" member, optional on the
    // wire): what `--fleet-status` renders as the per-phase
    // breakdown. Microseconds; `phasePoints` counts finished points.
    std::uint64_t phaseDecodeUs = 0;
    std::uint64_t phaseWarmupUs = 0;
    std::uint64_t phaseRestoreUs = 0;
    std::uint64_t phaseMeasureUs = 0;
    std::uint64_t phasePoints = 0;

    // Deterministic per-point measure-phase latency percentiles from
    // the worker's sim.phase.measure_us_hist histogram
    // (obs::histogramQuantile; bucket-resolution). "percentiles"
    // member, optional on the wire -- absent until the worker has
    // finished a point, and from workers predating it.
    std::uint64_t measureP50Us = 0;
    std::uint64_t measureP95Us = 0;
    std::uint64_t measureP99Us = 0;
};

json::Value encodeHeartbeat(const HeartbeatFrame &heartbeat);
HeartbeatFrame decodeHeartbeat(const json::Value &frame);

/** One grid point handed to a stealing worker slot. */
struct WorkItem
{
    std::uint64_t task = 0; ///< Coordinator-assigned task id.
    runner::Experiment experiment;

    /**
     * Optional tracing context relayed from the owning submit
     * ("trace" member, absent when 0): the worker records this
     * point's spans under it and ships them back in the result.
     */
    std::uint64_t traceId = 0;
    std::uint64_t parentSpan = 0;
};

json::Value encodeWork(const WorkItem &item);
WorkItem decodeWork(const json::Value &frame);

/**
 * A slot's finished point. `ok` false reports a failed simulation
 * (bad trace on this worker, ...) with the detail in `message`; the
 * coordinator fails the owning job, mirroring how a local simulate
 * exception fails a SimServer job.
 */
struct WorkResult
{
    std::uint64_t task = 0;
    bool ok = true;
    std::string message; ///< Failure detail when !ok.
    bool cached = false; ///< Served from the worker's cache.
    std::string fingerprint;
    SimResult result;
    bool hasDelta = false;
    StatsDelta delta;

    /**
     * Optional tracing payload ("spans"/"timing", absent when the
     * task was untraced): the worker-side spans the coordinator
     * merges into the fleet trace and relays to the client.
     */
    std::vector<obs::SpanRecord> spans;
    bool hasTiming = false;
    obs::PointTiming timing;
};

json::Value encodeWorkResult(const WorkResult &result);
WorkResult decodeWorkResult(const json::Value &frame);

/** One worker's row in a coordinator `status` frame's fleet member. */
struct WorkerStatus
{
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t slots = 0;
    std::uint64_t inflight = 0;  ///< Points dispatched, unreturned.
    std::uint64_t completed = 0; ///< Points returned since register.
    bool alive = true;           ///< False once declared dead.
    std::uint64_t heartbeatAgeMs = 0; ///< Since the last heartbeat.

    /** Points returned per second since registration. */
    double throughput = 0.0;

    // The worker's own cache counters, from its last heartbeat.
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t backendHits = 0;
    std::uint64_t checkpointHits = 0;   ///< Warmups restored.
    std::uint64_t checkpointMisses = 0; ///< Warmups simulated.

    // Per-phase totals from the worker's last heartbeat ("phase"
    // member, optional on the wire; zeros from older workers).
    std::uint64_t phaseDecodeUs = 0;
    std::uint64_t phaseWarmupUs = 0;
    std::uint64_t phaseRestoreUs = 0;
    std::uint64_t phaseMeasureUs = 0;
    std::uint64_t phasePoints = 0;

    // Measure-phase latency percentiles relayed from the worker's
    // last heartbeat ("percentiles" member, optional on the wire;
    // zeros from older workers or before the first finished point).
    std::uint64_t measureP50Us = 0;
    std::uint64_t measureP95Us = 0;
    std::uint64_t measureP99Us = 0;
};

json::Value encodeWorkerStatus(const WorkerStatus &status);
WorkerStatus decodeWorkerStatus(const json::Value &v);

// -------------------------------------------------- shared helpers

/** Wire form of one grid point (shared by submit and work frames). */
json::Value encodeExperiment(const runner::Experiment &exp);
runner::Experiment decodeExperiment(const json::Value &v);

/**
 * Per-path probe memo for validateExperimentTrace: path ->
 * (instruction count, canonical program-params encoding).
 */
using TraceProbeCache =
    std::map<std::string, std::pair<std::uint64_t, std::string>>;

/**
 * Validate that a trace-backed experiment can run *here*: readable,
 * untruncated v2 trace, long enough for the requested (possibly
 * windowed) run, recorded from the same program parameters the
 * config describes. One probe per distinct path via `probed`.
 * Returns false with the detail in `error`; never throws or
 * fatal()s -- callers sit on daemon threads. Non-trace experiments
 * trivially pass.
 */
bool validateExperimentTrace(const runner::Experiment &exp,
                             TraceProbeCache &probed,
                             std::string &error);

/** Convenience: {"type":t} or {"type":"error","message":m}. */
json::Value makeFrame(const std::string &type);
json::Value makeError(const std::string &message);

/**
 * Frame "type" member, or throws CodecError when absent/non-object.
 */
std::string frameType(const json::Value &frame);

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_PROTOCOL_HH
