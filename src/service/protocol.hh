/**
 * @file
 * The shotgun-serve wire protocol: newline-delimited JSON frames over
 * a stream socket (TCP or Unix). Every frame is one line, one JSON
 * object, with a "type" member. See src/service/README.md for the
 * full grammar and an example session.
 *
 * Client -> server:
 *   {"type":"submit","protocol":2,"experiment":...,"jobs":N,
 *    "grid":[{"workload":...,"label":...,"via_baseline_cache":b,
 *             "config":{...}},...]}
 *   {"type":"status"}          {"type":"cancel","job":N}
 *   {"type":"ping"}            {"type":"shutdown"}
 *
 * Server -> client:
 *   {"type":"accepted","job":N,"total":N,"fingerprints":[...]}
 *   {"type":"result","job":N,"index":N,"cached":b,
 *    "workload":...,"label":...,"fingerprint":...,"result":{...}
 *    [,"delta":{...}]}
 *   {"type":"done","job":N,"status":"ok|cancelled|error",
 *    "completed":N,"cached":N[,"message":...]}
 *   {"type":"status","server":{...},"jobs":[...]}
 *   {"type":"pong"}  {"type":"bye"}  {"type":"error","message":...}
 *
 * Protocol 2 (windowed simulation): every config carries a "window"
 * member ({"skip_instructions","measure_start","measure_end"}, all 0
 * when disabled), and the `result` frame of a windowed grid point
 * additionally carries "delta" -- the window's raw counters
 * (sim/stats_delta.hh) -- so clients stitch windows from exact
 * integers rather than derived doubles.
 *
 * This header provides typed encode/decode for the structured frames;
 * trivial frames (ping/pong/bye/...) are built inline where used.
 * Decoding throws CodecError/JsonError on malformed frames.
 */

#ifndef SHOTGUN_SERVICE_PROTOCOL_HH
#define SHOTGUN_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "runner/experiment.hh"
#include "service/codec.hh"

namespace shotgun
{
namespace service
{

/** Bumped on any incompatible frame-layout change. */
constexpr std::uint64_t kProtocolVersion = 2;

/** A grid submission: the wire form of a runner::ExperimentSet. */
struct SubmitRequest
{
    std::string experiment; ///< Sweep name (result-sink header).

    /** Worker threads for this job; 0 = server default; the server
     * additionally clamps to its --jobs cap. */
    std::uint64_t jobs = 0;

    std::vector<runner::Experiment> grid;
};

json::Value encodeSubmit(const SubmitRequest &request);
SubmitRequest decodeSubmit(const json::Value &frame);

/** One streamed result, index-aligned with the submitted grid. */
struct ResultEvent
{
    std::uint64_t job = 0;
    std::uint64_t index = 0;
    bool cached = false; ///< Served from the fingerprint cache.
    std::string workload;
    std::string label;
    std::string fingerprint;
    SimResult result;

    /**
     * Raw window counters, present exactly when the grid point's
     * config had a window: what submitWindowSharded() stitches.
     */
    bool hasDelta = false;
    StatsDelta delta;
};

json::Value encodeResultEvent(const ResultEvent &event);
ResultEvent decodeResultEvent(const json::Value &frame);

/** Terminal job states reported in `done` frames. */
struct DoneEvent
{
    std::uint64_t job = 0;
    std::string status; ///< "ok", "cancelled" or "error".
    std::uint64_t completed = 0;
    std::uint64_t cached = 0;
    std::string message; ///< Failure detail for "error".
};

json::Value encodeDone(const DoneEvent &event);
DoneEvent decodeDone(const json::Value &frame);

/** One job's row in a `status` frame. */
struct JobStatus
{
    std::uint64_t id = 0;
    std::string experiment;
    std::string state; ///< queued/running/ok/cancelled/error.
    std::uint64_t total = 0;
    std::uint64_t completed = 0;
    std::uint64_t cached = 0;

    /** Scheduler worker budget; absent in pre-0.5 frames. */
    std::uint64_t budget = 0;
};

json::Value encodeJobStatus(const JobStatus &status);
JobStatus decodeJobStatus(const json::Value &v);

/** Convenience: {"type":t} or {"type":"error","message":m}. */
json::Value makeFrame(const std::string &type);
json::Value makeError(const std::string &message);

/**
 * Frame "type" member, or throws CodecError when absent/non-object.
 */
std::string frameType(const json::Value &frame);

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_PROTOCOL_HH
