#include "service/protocol.hh"

namespace shotgun
{
namespace service
{

using json::Value;

json::Value
encodeSubmit(const SubmitRequest &request)
{
    Value grid = Value::array();
    for (const runner::Experiment &exp : request.grid) {
        Value e = Value::object();
        e.set("workload", Value::string(exp.workload));
        e.set("label", Value::string(exp.label));
        e.set("via_baseline_cache",
              Value::boolean(exp.viaBaselineCache));
        e.set("config", encodeSimConfig(exp.config));
        grid.push(std::move(e));
    }
    Value v = Value::object();
    v.set("type", Value::string("submit"));
    v.set("protocol", Value::number(kProtocolVersion));
    v.set("experiment", Value::string(request.experiment));
    v.set("jobs", Value::number(request.jobs));
    v.set("grid", std::move(grid));
    return v;
}

SubmitRequest
decodeSubmit(const json::Value &frame)
{
    SubmitRequest request;
    const Value &protocol = frame.at("protocol");
    if (protocol.asU64() != kProtocolVersion)
        throw CodecError("unsupported protocol version " +
                         protocol.numberToken() + " (this build: " +
                         std::to_string(kProtocolVersion) + ")");
    request.experiment = frame.at("experiment").asString();
    request.jobs = frame.at("jobs").asU64();
    const Value &grid = frame.at("grid");
    if (!grid.isArray())
        throw CodecError("submit: \"grid\" must be an array");
    if (grid.items().empty())
        throw CodecError("submit: empty grid");
    for (const Value &e : grid.items()) {
        runner::Experiment exp;
        exp.workload = e.at("workload").asString();
        exp.label = e.at("label").asString();
        exp.viaBaselineCache = e.at("via_baseline_cache").asBool();
        exp.config = decodeSimConfig(e.at("config"));
        request.grid.push_back(std::move(exp));
    }
    return request;
}

json::Value
encodeResultEvent(const ResultEvent &event)
{
    Value v = Value::object();
    v.set("type", Value::string("result"));
    v.set("job", Value::number(event.job));
    v.set("index", Value::number(event.index));
    v.set("cached", Value::boolean(event.cached));
    v.set("workload", Value::string(event.workload));
    v.set("label", Value::string(event.label));
    v.set("fingerprint", Value::string(event.fingerprint));
    v.set("result", encodeSimResult(event.result));
    if (event.hasDelta)
        v.set("delta", encodeStatsDelta(event.delta));
    return v;
}

ResultEvent
decodeResultEvent(const json::Value &frame)
{
    ResultEvent event;
    event.job = frame.at("job").asU64();
    event.index = frame.at("index").asU64();
    event.cached = frame.at("cached").asBool();
    event.workload = frame.at("workload").asString();
    event.label = frame.at("label").asString();
    event.fingerprint = frame.at("fingerprint").asString();
    event.result = decodeSimResult(frame.at("result"));
    if (const Value *delta = frame.find("delta")) {
        event.hasDelta = true;
        event.delta = decodeStatsDelta(*delta);
    }
    return event;
}

json::Value
encodeDone(const DoneEvent &event)
{
    Value v = Value::object();
    v.set("type", Value::string("done"));
    v.set("job", Value::number(event.job));
    v.set("status", Value::string(event.status));
    v.set("completed", Value::number(event.completed));
    v.set("cached", Value::number(event.cached));
    if (!event.message.empty())
        v.set("message", Value::string(event.message));
    return v;
}

DoneEvent
decodeDone(const json::Value &frame)
{
    DoneEvent event;
    event.job = frame.at("job").asU64();
    event.status = frame.at("status").asString();
    event.completed = frame.at("completed").asU64();
    event.cached = frame.at("cached").asU64();
    if (const Value *message = frame.find("message"))
        event.message = message->asString();
    return event;
}

json::Value
encodeJobStatus(const JobStatus &status)
{
    Value v = Value::object();
    v.set("id", Value::number(status.id));
    v.set("experiment", Value::string(status.experiment));
    v.set("state", Value::string(status.state));
    v.set("total", Value::number(status.total));
    v.set("completed", Value::number(status.completed));
    v.set("cached", Value::number(status.cached));
    v.set("budget", Value::number(status.budget));
    return v;
}

JobStatus
decodeJobStatus(const json::Value &v)
{
    JobStatus status;
    status.id = v.at("id").asU64();
    status.experiment = v.at("experiment").asString();
    status.state = v.at("state").asString();
    status.total = v.at("total").asU64();
    status.completed = v.at("completed").asU64();
    status.cached = v.at("cached").asU64();
    if (const Value *budget = v.find("budget"))
        status.budget = budget->asU64();
    return status;
}

json::Value
makeFrame(const std::string &type)
{
    Value v = Value::object();
    v.set("type", Value::string(type));
    return v;
}

json::Value
makeError(const std::string &message)
{
    Value v = makeFrame("error");
    v.set("message", Value::string(message));
    return v;
}

std::string
frameType(const json::Value &frame)
{
    if (!frame.isObject())
        throw CodecError("frame is not a JSON object");
    const Value *type = frame.find("type");
    if (type == nullptr || !type->isString())
        throw CodecError("frame has no string \"type\" member");
    return type->asString();
}

} // namespace service
} // namespace shotgun
