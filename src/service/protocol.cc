#include "service/protocol.hh"

namespace shotgun
{
namespace service
{

using json::Value;

namespace
{

/** Throw unless `frame` carries this build's protocol version. */
void
checkProtocol(const json::Value &frame)
{
    const Value &protocol = frame.at("protocol");
    if (protocol.asU64() != kProtocolVersion)
        throw CodecError("unsupported protocol version " +
                         protocol.numberToken() + " (this build: " +
                         std::to_string(kProtocolVersion) + ")");
}

// --- optional tracing members (see the header comment: all of these
// are absent unless tracing is active, and peers that predate them
// parse the frames unchanged).

/** Append {"trace":{"id":N,"parent":N}} when a trace id is set. */
void
setTraceRef(Value &v, std::uint64_t trace_id,
            std::uint64_t parent_span)
{
    if (trace_id == 0)
        return;
    Value trace = Value::object();
    trace.set("id", Value::number(trace_id));
    trace.set("parent", Value::number(parent_span));
    v.set("trace", std::move(trace));
}

void
getTraceRef(const Value &frame, std::uint64_t &trace_id,
            std::uint64_t &parent_span)
{
    if (const Value *trace = frame.find("trace")) {
        trace_id = trace->at("id").asU64();
        parent_span = trace->at("parent").asU64();
    }
}

void
setSpans(Value &v, const std::vector<obs::SpanRecord> &spans)
{
    if (spans.empty())
        return;
    Value array = Value::array();
    for (const obs::SpanRecord &span : spans)
        array.push(obs::spanToJson(span));
    v.set("spans", std::move(array));
}

std::vector<obs::SpanRecord>
getSpans(const Value &frame)
{
    std::vector<obs::SpanRecord> spans;
    if (const Value *array = frame.find("spans")) {
        for (const Value &span : array->items())
            spans.push_back(obs::spanFromJson(span));
    }
    return spans;
}

void
setTiming(Value &v, bool has_timing, const obs::PointTiming &timing)
{
    if (!has_timing)
        return;
    Value t = Value::object();
    t.set("decode_us", Value::number(timing.decodeUs));
    t.set("warmup_us", Value::number(timing.warmupUs));
    t.set("restore_us", Value::number(timing.restoreUs));
    t.set("measure_us", Value::number(timing.measureUs));
    v.set("timing", std::move(t));
}

bool
getTiming(const Value &frame, obs::PointTiming &timing)
{
    const Value *t = frame.find("timing");
    if (t == nullptr)
        return false;
    timing.decodeUs = t->at("decode_us").asU64();
    timing.warmupUs = t->at("warmup_us").asU64();
    timing.restoreUs = t->at("restore_us").asU64();
    timing.measureUs = t->at("measure_us").asU64();
    return true;
}

} // namespace

json::Value
encodeExperiment(const runner::Experiment &exp)
{
    Value e = Value::object();
    e.set("workload", Value::string(exp.workload));
    e.set("label", Value::string(exp.label));
    e.set("via_baseline_cache", Value::boolean(exp.viaBaselineCache));
    e.set("config", encodeSimConfig(exp.config));
    return e;
}

runner::Experiment
decodeExperiment(const json::Value &v)
{
    runner::Experiment exp;
    exp.workload = v.at("workload").asString();
    exp.label = v.at("label").asString();
    exp.viaBaselineCache = v.at("via_baseline_cache").asBool();
    exp.config = decodeSimConfig(v.at("config"));
    return exp;
}

json::Value
encodeSubmit(const SubmitRequest &request)
{
    Value grid = Value::array();
    for (const runner::Experiment &exp : request.grid)
        grid.push(encodeExperiment(exp));
    Value v = Value::object();
    v.set("type", Value::string("submit"));
    v.set("protocol", Value::number(kProtocolVersion));
    v.set("experiment", Value::string(request.experiment));
    v.set("jobs", Value::number(request.jobs));
    v.set("priority", Value::number(request.priority));
    v.set("grid", std::move(grid));
    setTraceRef(v, request.traceId, request.parentSpan);
    return v;
}

SubmitRequest
decodeSubmit(const json::Value &frame)
{
    SubmitRequest request;
    checkProtocol(frame);
    request.experiment = frame.at("experiment").asString();
    request.jobs = frame.at("jobs").asU64();
    if (const Value *priority = frame.find("priority"))
        request.priority = priority->asU64();
    const Value &grid = frame.at("grid");
    if (!grid.isArray())
        throw CodecError("submit: \"grid\" must be an array");
    if (grid.items().empty())
        throw CodecError("submit: empty grid");
    for (const Value &e : grid.items())
        request.grid.push_back(decodeExperiment(e));
    getTraceRef(frame, request.traceId, request.parentSpan);
    return request;
}

json::Value
encodeResultEvent(const ResultEvent &event)
{
    Value v = Value::object();
    v.set("type", Value::string("result"));
    v.set("job", Value::number(event.job));
    v.set("index", Value::number(event.index));
    v.set("cached", Value::boolean(event.cached));
    v.set("workload", Value::string(event.workload));
    v.set("label", Value::string(event.label));
    v.set("fingerprint", Value::string(event.fingerprint));
    v.set("result", encodeSimResult(event.result));
    if (event.hasDelta)
        v.set("delta", encodeStatsDelta(event.delta));
    setSpans(v, event.spans);
    setTiming(v, event.hasTiming, event.timing);
    return v;
}

ResultEvent
decodeResultEvent(const json::Value &frame)
{
    ResultEvent event;
    event.job = frame.at("job").asU64();
    event.index = frame.at("index").asU64();
    event.cached = frame.at("cached").asBool();
    event.workload = frame.at("workload").asString();
    event.label = frame.at("label").asString();
    event.fingerprint = frame.at("fingerprint").asString();
    event.result = decodeSimResult(frame.at("result"));
    if (const Value *delta = frame.find("delta")) {
        event.hasDelta = true;
        event.delta = decodeStatsDelta(*delta);
    }
    event.spans = getSpans(frame);
    event.hasTiming = getTiming(frame, event.timing);
    return event;
}

json::Value
encodeDone(const DoneEvent &event)
{
    Value v = Value::object();
    v.set("type", Value::string("done"));
    v.set("job", Value::number(event.job));
    v.set("status", Value::string(event.status));
    v.set("completed", Value::number(event.completed));
    v.set("cached", Value::number(event.cached));
    if (!event.message.empty())
        v.set("message", Value::string(event.message));
    return v;
}

DoneEvent
decodeDone(const json::Value &frame)
{
    DoneEvent event;
    event.job = frame.at("job").asU64();
    event.status = frame.at("status").asString();
    event.completed = frame.at("completed").asU64();
    event.cached = frame.at("cached").asU64();
    if (const Value *message = frame.find("message"))
        event.message = message->asString();
    return event;
}

json::Value
encodeJobStatus(const JobStatus &status)
{
    Value v = Value::object();
    v.set("id", Value::number(status.id));
    v.set("experiment", Value::string(status.experiment));
    v.set("state", Value::string(status.state));
    v.set("total", Value::number(status.total));
    v.set("completed", Value::number(status.completed));
    v.set("cached", Value::number(status.cached));
    v.set("budget", Value::number(status.budget));
    return v;
}

JobStatus
decodeJobStatus(const json::Value &v)
{
    JobStatus status;
    status.id = v.at("id").asU64();
    status.experiment = v.at("experiment").asString();
    status.state = v.at("state").asString();
    status.total = v.at("total").asU64();
    status.completed = v.at("completed").asU64();
    status.cached = v.at("cached").asU64();
    if (const Value *budget = v.find("budget"))
        status.budget = budget->asU64();
    return status;
}

json::Value
encodeRegister(const RegisterRequest &request)
{
    Value v = Value::object();
    v.set("type", Value::string("register"));
    v.set("protocol", Value::number(kProtocolVersion));
    v.set("name", Value::string(request.name));
    v.set("slots", Value::number(request.slots));
    return v;
}

RegisterRequest
decodeRegister(const json::Value &frame)
{
    checkProtocol(frame);
    RegisterRequest request;
    request.name = frame.at("name").asString();
    request.slots = frame.at("slots").asU64();
    if (request.slots == 0)
        throw CodecError("register: \"slots\" must be >= 1");
    return request;
}

json::Value
encodeHeartbeat(const HeartbeatFrame &heartbeat)
{
    Value cache = Value::object();
    cache.set("hits", Value::number(heartbeat.cacheHits));
    cache.set("misses", Value::number(heartbeat.cacheMisses));
    cache.set("backend_hits", Value::number(heartbeat.backendHits));
    Value checkpoint = Value::object();
    checkpoint.set("hits", Value::number(heartbeat.checkpointHits));
    checkpoint.set("misses",
                   Value::number(heartbeat.checkpointMisses));
    Value phase = Value::object();
    phase.set("decode_us", Value::number(heartbeat.phaseDecodeUs));
    phase.set("warmup_us", Value::number(heartbeat.phaseWarmupUs));
    phase.set("restore_us", Value::number(heartbeat.phaseRestoreUs));
    phase.set("measure_us", Value::number(heartbeat.phaseMeasureUs));
    phase.set("points", Value::number(heartbeat.phasePoints));
    Value v = Value::object();
    v.set("type", Value::string("heartbeat"));
    v.set("worker", Value::number(heartbeat.worker));
    v.set("completed", Value::number(heartbeat.completed));
    v.set("cache", std::move(cache));
    v.set("checkpoint", std::move(checkpoint));
    v.set("phase", std::move(phase));
    // Optional: absent until the first point has been measured, so a
    // freshly started worker heartbeats the exact bytes it always did.
    if (heartbeat.measureP50Us != 0 || heartbeat.measureP95Us != 0 ||
        heartbeat.measureP99Us != 0) {
        Value percentiles = Value::object();
        percentiles.set("measure_p50_us",
                        Value::number(heartbeat.measureP50Us));
        percentiles.set("measure_p95_us",
                        Value::number(heartbeat.measureP95Us));
        percentiles.set("measure_p99_us",
                        Value::number(heartbeat.measureP99Us));
        v.set("percentiles", std::move(percentiles));
    }
    return v;
}

HeartbeatFrame
decodeHeartbeat(const json::Value &frame)
{
    HeartbeatFrame heartbeat;
    heartbeat.worker = frame.at("worker").asU64();
    heartbeat.completed = frame.at("completed").asU64();
    const Value &cache = frame.at("cache");
    heartbeat.cacheHits = cache.at("hits").asU64();
    heartbeat.cacheMisses = cache.at("misses").asU64();
    heartbeat.backendHits = cache.at("backend_hits").asU64();
    // Absent from workers predating warmed-state checkpoints.
    if (const Value *checkpoint = frame.find("checkpoint")) {
        heartbeat.checkpointHits = checkpoint->at("hits").asU64();
        heartbeat.checkpointMisses =
            checkpoint->at("misses").asU64();
    }
    // Absent from workers predating per-phase accounting.
    if (const Value *phase = frame.find("phase")) {
        heartbeat.phaseDecodeUs = phase->at("decode_us").asU64();
        heartbeat.phaseWarmupUs = phase->at("warmup_us").asU64();
        heartbeat.phaseRestoreUs = phase->at("restore_us").asU64();
        heartbeat.phaseMeasureUs = phase->at("measure_us").asU64();
        heartbeat.phasePoints = phase->at("points").asU64();
    }
    // Absent from workers predating measure-latency percentiles.
    if (const Value *pct = frame.find("percentiles")) {
        heartbeat.measureP50Us = pct->at("measure_p50_us").asU64();
        heartbeat.measureP95Us = pct->at("measure_p95_us").asU64();
        heartbeat.measureP99Us = pct->at("measure_p99_us").asU64();
    }
    return heartbeat;
}

json::Value
encodeWork(const WorkItem &item)
{
    Value v = Value::object();
    v.set("type", Value::string("work"));
    v.set("task", Value::number(item.task));
    v.set("experiment", encodeExperiment(item.experiment));
    setTraceRef(v, item.traceId, item.parentSpan);
    return v;
}

WorkItem
decodeWork(const json::Value &frame)
{
    WorkItem item;
    item.task = frame.at("task").asU64();
    item.experiment = decodeExperiment(frame.at("experiment"));
    getTraceRef(frame, item.traceId, item.parentSpan);
    return item;
}

json::Value
encodeWorkResult(const WorkResult &result)
{
    Value v = Value::object();
    v.set("type", Value::string("result"));
    v.set("task", Value::number(result.task));
    v.set("ok", Value::boolean(result.ok));
    if (!result.ok) {
        v.set("message", Value::string(result.message));
        return v;
    }
    v.set("cached", Value::boolean(result.cached));
    v.set("fingerprint", Value::string(result.fingerprint));
    v.set("result", encodeSimResult(result.result));
    if (result.hasDelta)
        v.set("delta", encodeStatsDelta(result.delta));
    setSpans(v, result.spans);
    setTiming(v, result.hasTiming, result.timing);
    return v;
}

WorkResult
decodeWorkResult(const json::Value &frame)
{
    WorkResult result;
    result.task = frame.at("task").asU64();
    result.ok = frame.at("ok").asBool();
    if (!result.ok) {
        result.message = frame.at("message").asString();
        return result;
    }
    result.cached = frame.at("cached").asBool();
    result.fingerprint = frame.at("fingerprint").asString();
    result.result = decodeSimResult(frame.at("result"));
    if (const Value *delta = frame.find("delta")) {
        result.hasDelta = true;
        result.delta = decodeStatsDelta(*delta);
    }
    result.spans = getSpans(frame);
    result.hasTiming = getTiming(frame, result.timing);
    return result;
}

json::Value
encodeWorkerStatus(const WorkerStatus &status)
{
    Value v = Value::object();
    v.set("id", Value::number(status.id));
    v.set("name", Value::string(status.name));
    v.set("slots", Value::number(status.slots));
    v.set("inflight", Value::number(status.inflight));
    v.set("completed", Value::number(status.completed));
    v.set("alive", Value::boolean(status.alive));
    v.set("heartbeat_age_ms", Value::number(status.heartbeatAgeMs));
    v.set("throughput", Value::number(status.throughput));
    v.set("cache_hits", Value::number(status.cacheHits));
    v.set("cache_misses", Value::number(status.cacheMisses));
    v.set("backend_hits", Value::number(status.backendHits));
    v.set("checkpoint_hits", Value::number(status.checkpointHits));
    v.set("checkpoint_misses",
          Value::number(status.checkpointMisses));
    Value phase = Value::object();
    phase.set("decode_us", Value::number(status.phaseDecodeUs));
    phase.set("warmup_us", Value::number(status.phaseWarmupUs));
    phase.set("restore_us", Value::number(status.phaseRestoreUs));
    phase.set("measure_us", Value::number(status.phaseMeasureUs));
    phase.set("points", Value::number(status.phasePoints));
    v.set("phase", std::move(phase));
    if (status.measureP50Us != 0 || status.measureP95Us != 0 ||
        status.measureP99Us != 0) {
        Value percentiles = Value::object();
        percentiles.set("measure_p50_us",
                        Value::number(status.measureP50Us));
        percentiles.set("measure_p95_us",
                        Value::number(status.measureP95Us));
        percentiles.set("measure_p99_us",
                        Value::number(status.measureP99Us));
        v.set("percentiles", std::move(percentiles));
    }
    return v;
}

WorkerStatus
decodeWorkerStatus(const json::Value &v)
{
    WorkerStatus status;
    status.id = v.at("id").asU64();
    status.name = v.at("name").asString();
    status.slots = v.at("slots").asU64();
    status.inflight = v.at("inflight").asU64();
    status.completed = v.at("completed").asU64();
    status.alive = v.at("alive").asBool();
    status.heartbeatAgeMs = v.at("heartbeat_age_ms").asU64();
    status.throughput = v.at("throughput").asDouble();
    status.cacheHits = v.at("cache_hits").asU64();
    status.cacheMisses = v.at("cache_misses").asU64();
    status.backendHits = v.at("backend_hits").asU64();
    // Absent from coordinators predating warmed-state checkpoints.
    if (const Value *hits = v.find("checkpoint_hits"))
        status.checkpointHits = hits->asU64();
    if (const Value *misses = v.find("checkpoint_misses"))
        status.checkpointMisses = misses->asU64();
    // Absent from coordinators predating per-phase accounting.
    if (const Value *phase = v.find("phase")) {
        status.phaseDecodeUs = phase->at("decode_us").asU64();
        status.phaseWarmupUs = phase->at("warmup_us").asU64();
        status.phaseRestoreUs = phase->at("restore_us").asU64();
        status.phaseMeasureUs = phase->at("measure_us").asU64();
        status.phasePoints = phase->at("points").asU64();
    }
    // Absent from coordinators predating measure percentiles.
    if (const Value *pct = v.find("percentiles")) {
        status.measureP50Us = pct->at("measure_p50_us").asU64();
        status.measureP95Us = pct->at("measure_p95_us").asU64();
        status.measureP99Us = pct->at("measure_p99_us").asU64();
    }
    return status;
}

bool
validateExperimentTrace(const runner::Experiment &exp,
                        TraceProbeCache &probed, std::string &error)
{
    const std::string &path = exp.config.workload.tracePath;
    if (path.empty())
        return true;
    auto it = probed.find(path);
    if (it == probed.end()) {
        std::string probe_error;
        TraceInfo info;
        if (!probeTraceFile(path, 0, probe_error, &info)) {
            error = "experiment \"" + exp.workload + "/" + exp.label +
                    "\": " + probe_error;
            return false;
        }
        it = probed
                 .emplace(path,
                          std::make_pair(
                              info.instructions,
                              encodeProgramParams(info.preset.program)
                                  .dump()))
                 .first;
    }
    // A windowed config fast-forwards to window.measureEnd at most
    // (plus any stream skip); the whole region otherwise.
    const SimWindow &window = exp.config.window;
    const std::uint64_t needed =
        window.skipInstructions + exp.config.warmupInstructions +
        (window.enabled() ? window.measureEnd
                          : exp.config.measureInstructions);
    if (it->second.first < needed) {
        error = "experiment \"" + exp.workload + "/" + exp.label +
                "\": trace '" + path + "' holds " +
                std::to_string(it->second.first) +
                " instructions but the run needs " +
                std::to_string(needed) + "; record a longer trace";
        return false;
    }
    if (it->second.second !=
        encodeProgramParams(exp.config.workload.program).dump()) {
        error = "experiment \"" + exp.workload + "/" + exp.label +
                "\": trace '" + path +
                "' on this server was recorded from different "
                "program parameters than the submitted workload "
                "(stale or re-recorded copy?)";
        return false;
    }
    return true;
}

json::Value
makeFrame(const std::string &type)
{
    Value v = Value::object();
    v.set("type", Value::string(type));
    return v;
}

json::Value
makeError(const std::string &message)
{
    Value v = makeFrame("error");
    v.set("message", Value::string(message));
    return v;
}

std::string
frameType(const json::Value &frame)
{
    if (!frame.isObject())
        throw CodecError("frame is not a JSON object");
    const Value *type = frame.find("type");
    if (type == nullptr || !type->isString())
        throw CodecError("frame has no string \"type\" member");
    return type->asString();
}

} // namespace service
} // namespace shotgun
