/**
 * @file
 * The batch/async simulation service daemon core: accepts frame
 * protocol connections (see protocol.hh), admits submitted grids as
 * jobs into a work-conserving multi-job scheduler
 * (runner/grid_scheduler.hh) -- a fixed worker pool dispatches grid
 * points round-robin across every admitted job, so concurrently
 * submitted sweeps make progress together instead of queueing FIFO
 * behind each other -- streams `result` frames in grid order as
 * points complete, and serves repeated configurations from a
 * fingerprint-keyed result cache with an optional LRU byte budget
 * (common/memo.hh): a sweep resubmitted after a client crash, or
 * sharing points with an earlier sweep, only simulates the
 * configurations it has not seen.
 *
 * The class is the in-process core of the `shotgun-serve` tool, kept
 * in the library so tests can run a real server on a Unix socket in
 * the test process and assert byte-identical results end to end.
 *
 * Determinism: every job's results are emitted strictly in its grid
 * order and each simulation is a pure function of its SimConfig, so
 * any shard of a grid returns exactly the results an in-process run
 * of that shard yields, regardless of worker budgets, concurrent
 * jobs, caching or eviction.
 */

#ifndef SHOTGUN_SERVICE_SERVER_HH
#define SHOTGUN_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/memo.hh"
#include "runner/grid_scheduler.hh"
#include "service/protocol.hh"
#include "service/socket.hh"

namespace shotgun
{
namespace service
{

struct ServerOptions
{
    /**
     * Worker pool size (and the cap on any single job's worker
     * budget); 0 means one per hardware thread. A submit's own
     * `jobs` request is clamped to this.
     */
    unsigned jobs = 0;

    /**
     * Byte budget for the fingerprint result cache; least-recently-
     * used entries are evicted once the accounted result bytes
     * exceed it. 0 keeps the cache unbounded.
     */
    std::size_t cacheBytes = 0;

    /** Log stream for connection/job lines; nullptr is quiet. */
    std::ostream *log = nullptr;
};

/**
 * A cached grid-point outcome: the derived result plus, for windowed
 * configs, the raw window counters -- a cache hit must replay the
 * same `delta` member the original `result` frame carried, or a
 * resubmitted window could no longer be stitched.
 */
struct CachedResult
{
    SimResult result;
    bool hasDelta = false;
    StatsDelta delta;
};

class SimServer
{
  public:
    /**
     * Bind and listen immediately (so the resolved endpoint -- e.g.
     * a kernel-assigned TCP port -- is readable before serve()).
     * Throws SocketError when the endpoint cannot be bound.
     */
    SimServer(const std::string &endpoint_spec,
              ServerOptions options = {});
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Resolved listen address, e.g. "127.0.0.1:34127". */
    std::string endpoint() const;

    /**
     * Accept and serve connections until a `shutdown` frame arrives
     * or requestShutdown() is called. Joins every reader, cancels
     * and drains every job (each still gets its `done` frame), so
     * the caller may destroy the server afterwards.
     */
    void serve();

    /**
     * Initiate shutdown from any thread: stop accepting, cancel
     * admitted jobs, unblock connection readers.
     */
    void requestShutdown();

    /** Distinct configurations in the result cache right now. */
    std::size_t cacheSize() const;

    /** Cache counters (entries/bytes/hits/misses/evictions). */
    MemoCacheStats cacheStats() const;

    /**
     * Attach a persistent write-through backend to the result cache
     * (e.g. fleet::DiskResultCache, wired by the tool layer so the
     * service stays ignorant of storage). Call before serve().
     */
    void setCacheBackend(
        LruMemoCache<std::string, CachedResult>::LoadFn load,
        LruMemoCache<std::string, CachedResult>::StoreFn store);

    /**
     * Compute one grid point through the result cache -- the shared
     * path of admitted jobs and the fleet worker's steal loop, so
     * both populate the same fingerprint cache. `cached` (optional)
     * reports whether the value was served without simulating here.
     * Throws whatever the simulation throws; callers on daemon
     * threads must validate the experiment first
     * (validateExperimentTrace) so a bad trace cannot fatal().
     */
    std::shared_ptr<const CachedResult>
    computeCached(const std::string &fingerprint,
                  const runner::Experiment &exp,
                  bool *cached = nullptr);

  private:
    struct Connection;
    struct Job;

    void handleConnection(std::shared_ptr<Connection> conn);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const json::Value &frame);
    json::Value statusFrame();
    void pruneJobs();
    void log(const std::string &line);

    ServerOptions options_;
    Listener listener_;

    std::atomic<bool> stop_{false};

    mutable std::mutex mutex_; ///< jobs_, connections_.
    std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
    std::vector<std::weak_ptr<Connection>> connections_;
    std::uint64_t nextJobId_ = 1;

    LruMemoCache<std::string, CachedResult> cache_;

    // Declared last on purpose: its destructor joins the worker
    // threads, and their hooks touch cache_, jobs_, mutex_ and the
    // connection registry -- all of which must still be alive.
    // Members destroy in reverse declaration order, so the
    // scheduler goes first.
    runner::GridScheduler scheduler_;
};

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_SERVER_HH
