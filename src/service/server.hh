/**
 * @file
 * The batch/async simulation service daemon core: accepts frame
 * protocol connections (see protocol.hh), queues submitted grids as
 * jobs, executes them FIFO through the shared ExperimentRunner with
 * per-job worker budgeting, streams `result` frames in grid order as
 * points complete, and serves repeated configurations from a
 * fingerprint-keyed result cache (common/memo.hh) -- a sweep
 * resubmitted after a client crash, or sharing points with an earlier
 * sweep, only simulates the configurations it has not seen.
 *
 * The class is the in-process core of the `shotgun-serve` tool, kept
 * in the library so tests can run a real server on a Unix socket in
 * the test process and assert byte-identical results end to end.
 *
 * Determinism: the server executes each submitted grid with the same
 * ExperimentRunner machinery the benches use, so any shard of a grid
 * returns exactly the results an in-process run of that shard yields,
 * regardless of job count, caching, or which worker serves it.
 */

#ifndef SHOTGUN_SERVICE_SERVER_HH
#define SHOTGUN_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/memo.hh"
#include "service/protocol.hh"
#include "service/socket.hh"

namespace shotgun
{
namespace service
{

struct ServerOptions
{
    /**
     * Cap on any single job's worker threads; 0 means one per
     * hardware thread. A submit's own `jobs` request is clamped to
     * this.
     */
    unsigned jobs = 0;

    /** Log stream for connection/job lines; nullptr is quiet. */
    std::ostream *log = nullptr;
};

class SimServer
{
  public:
    /**
     * Bind and listen immediately (so the resolved endpoint -- e.g.
     * a kernel-assigned TCP port -- is readable before serve()).
     * Throws SocketError when the endpoint cannot be bound.
     */
    SimServer(const std::string &endpoint_spec,
              ServerOptions options = {});
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Resolved listen address, e.g. "127.0.0.1:34127". */
    std::string endpoint() const;

    /**
     * Accept and serve connections until a `shutdown` frame arrives
     * or requestShutdown() is called. Joins every worker before
     * returning, so the caller may destroy the server afterwards.
     */
    void serve();

    /**
     * Initiate shutdown from any thread: stop accepting, cancel
     * queued and running jobs, unblock connection readers.
     */
    void requestShutdown();

    /** Distinct configurations simulated so far (cache entries). */
    std::size_t cacheSize() const;

  private:
    struct Connection;
    struct Job;

    void handleConnection(std::shared_ptr<Connection> conn);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const json::Value &frame);
    json::Value statusFrame();
    void dispatchLoop();
    void runJob(const std::shared_ptr<Job> &job);
    void pruneJobs();
    void log(const std::string &line);

    ServerOptions options_;
    Listener listener_;

    std::atomic<bool> stop_{false};

    mutable std::mutex mutex_; ///< jobs_, queue_, connections_.
    std::condition_variable queueCv_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
    std::vector<std::weak_ptr<Connection>> connections_;
    std::uint64_t nextJobId_ = 1;

    MemoCache<std::string, SimResult> cache_;
};

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_SERVER_HH
