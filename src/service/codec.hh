/**
 * @file
 * Canonical text codec for SimConfig and SimResult: every field,
 * always, in a fixed order, as compact single-line JSON. One
 * serialized form serves three masters --
 *
 *  - the wire (service/protocol.hh frames embed these objects),
 *  - the fingerprint (FNV-1a over the canonical bytes identifies a
 *    configuration for result caching and deduplication), and
 *  - the archive (a decoded config re-encodes to the same bytes, so
 *    configs can be logged and replayed years later).
 *
 * Decoding is strict in both directions: a missing field, an unknown
 * field, or a kind mismatch raises CodecError (derived from
 * json::JsonError) -- frames are rejected, the process never dies.
 *
 * Workloads round-trip two ways: the canonical form embeds the full
 * WorkloadPreset (program-model parameters, data-side knobs and the
 * trace path), while decode also accepts a compact string -- a preset
 * name ("oracle") or a `trace:<path>[:name]` spec -- which is
 * resolved through presetByName(), letting hand-written submissions
 * reference a workload the way every bench command line does.
 */

#ifndef SHOTGUN_SERVICE_CODEC_HH
#define SHOTGUN_SERVICE_CODEC_HH

#include <string>

#include "common/json.hh"
#include "obs/uarch.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"

namespace shotgun
{
namespace service
{

/** Strict decode failure: the message names field and problem. */
struct CodecError : json::JsonError
{
    explicit CodecError(const std::string &what) : json::JsonError(what)
    {
    }
};

// ------------------------------------------------------------- encode

json::Value encodeProgramParams(const ProgramParams &params);
json::Value encodeWorkloadPreset(const WorkloadPreset &preset);
json::Value encodeCoreParams(const CoreParams &params);
json::Value encodeSchemeConfig(const SchemeConfig &config);
json::Value encodeSimWindow(const SimWindow &window);
json::Value encodeSimConfig(const SimConfig &config);
json::Value encodeSimResult(const SimResult &result);

/**
 * Raw per-window counters (sim/stats_delta.hh), shipped in windowed
 * `result` frames so the client stitches from exact integers, never
 * from derived doubles.
 */
json::Value encodeStatsDelta(const StatsDelta &delta);

/**
 * Microarchitectural probe payload (obs/uarch.hh). SimResult and
 * StatsDelta embed it as the *optional* "uarch" member, emitted only
 * when the run had probes enabled, so probe-free payloads are
 * byte-identical to what they were before the probe layer existed.
 */
json::Value encodeUarchBreakdown(const obs::UarchBreakdown &u);

// ------------------------------------------------------------- decode

ProgramParams decodeProgramParams(const json::Value &v);

/**
 * Accepts the canonical object form or a compact string (preset name
 * or `trace:<path>[:name]` spec). A string trace spec requires the
 * trace file to be readable here -- its header is the preset.
 */
WorkloadPreset decodeWorkloadPreset(const json::Value &v);

CoreParams decodeCoreParams(const json::Value &v);
SchemeConfig decodeSchemeConfig(const json::Value &v);

/**
 * Strict decode plus semantic validation (an enabled window must be
 * a non-empty range; a stream skip needs a window): an invalid
 * window is a rejected frame, never a fatal() inside a simulation
 * worker thread of the daemon.
 */
SimWindow decodeSimWindow(const json::Value &v);

SimConfig decodeSimConfig(const json::Value &v);
SimResult decodeSimResult(const json::Value &v);
StatsDelta decodeStatsDelta(const json::Value &v);
obs::UarchBreakdown decodeUarchBreakdown(const json::Value &v);

// ------------------------------------------------- trace validation

/**
 * Non-fatal trace-file sanity probe for the service boundary (the
 * trace reader proper is fatal() on damage -- right for a CLI,
 * lethal for a daemon). Wraps trace_io's tryReadTraceInfo() -- valid
 * v2 header, payload backs the claimed record count -- and
 * additionally requires at least `needed_instructions`. Returns
 * false with a message in `error`; does not throw. `info` (optional)
 * receives the parsed header so callers can cross-check the embedded
 * preset against a submitted config. Damage to record *content* is
 * still only caught by the reader mid-run.
 */
bool probeTraceFile(const std::string &path,
                    std::uint64_t needed_instructions,
                    std::string &error, TraceInfo *info = nullptr);

// -------------------------------------------------------- fingerprint

/**
 * Stable identity of a simulation: 16 lowercase hex digits of the
 * FNV-1a 64 hash over the canonical encoding. Two configs share a
 * fingerprint iff they encode to the same bytes, so the fingerprint
 * is the key of the service's result cache and the client's dedup.
 *
 * Note a trace-backed workload is fingerprinted by its trace *path*
 * plus the header-derived preset, not the file content; re-recording
 * a different workload over the same path on a live server would
 * alias cache entries. Don't do that.
 */
std::string configFingerprint(const SimConfig &config);

/** The 16-hex-digit rendering of an FNV-1a hash (exposed for tests). */
std::string fingerprintHex(std::uint64_t hash);

} // namespace service
} // namespace shotgun

#endif // SHOTGUN_SERVICE_CODEC_HH
