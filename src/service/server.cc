#include "service/server.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "common/cli.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runner/thread_pool.hh"
#include "sim/checkpoint.hh"
#include "trace/decoded_trace.hh"

namespace shotgun
{
namespace service
{

using json::Value;

namespace
{

/**
 * Accounted size of one cached result: the map key plus the struct
 * plus its heap strings. Crude (allocator overhead is ignored) but
 * monotone in the real footprint, which is all a byte budget needs.
 */
std::size_t
resultCacheBytes(const std::string &fingerprint,
                 const CachedResult &cached)
{
    return fingerprint.size() + sizeof(CachedResult) +
           cached.result.workload.size() +
           cached.result.scheme.size();
}

unsigned
poolWorkers(unsigned jobs_option)
{
    return jobs_option != 0 ? jobs_option
                            : runner::ThreadPool::hardwareJobs();
}

/**
 * Decoded-trace-store counterpart of obs::publishCacheStats /
 * cacheStatsJson: publish into registry gauges under `prefix`, then
 * render the status frame's "traces" object (entries, bytes,
 * decodes, rejected -- same names and order as before the registry
 * existed) from those gauges.
 */
void
publishTraceStoreStats(obs::Registry &registry,
                       const std::string &prefix,
                       const DecodedTraceStoreStats &stats)
{
    registry.gauge(prefix + ".entries")
        ->set(static_cast<std::int64_t>(stats.cache.entries));
    registry.gauge(prefix + ".bytes")
        ->set(static_cast<std::int64_t>(stats.cache.bytes));
    registry.gauge(prefix + ".decodes")
        ->set(static_cast<std::int64_t>(stats.decodes));
    registry.gauge(prefix + ".rejected")
        ->set(static_cast<std::int64_t>(stats.rejected));
}

json::Value
traceStoreStatsJson(obs::Registry &registry, const std::string &prefix)
{
    auto gauge = [&](const char *field) {
        return Value::number(static_cast<std::uint64_t>(
            registry.gauge(prefix + "." + field)->value()));
    };
    Value v = Value::object();
    v.set("entries", gauge("entries"));
    v.set("bytes", gauge("bytes"));
    v.set("decodes", gauge("decodes"));
    v.set("rejected", gauge("rejected"));
    return v;
}

} // namespace

/**
 * One client connection. Result frames are written from scheduler
 * worker threads while command replies are written from the
 * connection's reader thread, hence the write mutex.
 */
struct SimServer::Connection
{
    explicit Connection(Socket sock) : channel(std::move(sock)) {}

    LineChannel channel;
    std::mutex writeMutex;

    /** False when the peer is gone; callers just stop streaming. */
    bool sendFrame(const Value &frame)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return channel.sendLine(frame.dump());
    }
};

struct SimServer::Job
{
    std::uint64_t id = 0;
    SubmitRequest request; ///< Grid moved out on admission.
    std::size_t total = 0; ///< Grid size (outlives the move).
    std::vector<std::string> fingerprints; ///< Index-aligned.
    unsigned budget = 0; ///< Scheduler worker budget (clamped).

    /**
     * Scheduler handle; 0 until the job is admitted. Guarded by the
     * server mutex together with cancelRequested, so a cancel frame
     * racing the admission is never lost.
     */
    std::uint64_t schedulerId = 0;
    bool cancelRequested = false;

    enum class State
    {
        Queued,
        Running,
        Ok,
        Cancelled,
        Error,
    };
    std::atomic<State> state{State::Queued};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> cachedCount{0};
    std::string message; ///< Failure detail, set before state.

    const char *stateName() const
    {
        switch (state.load()) {
          case State::Queued: return "queued";
          case State::Running: return "running";
          case State::Ok: return "ok";
          case State::Cancelled: return "cancelled";
          case State::Error: return "error";
        }
        return "?";
    }
};

SimServer::SimServer(const std::string &endpoint_spec,
                     ServerOptions options)
    : options_(options),
      listener_(Endpoint::parse(endpoint_spec)),
      cache_(options.cacheBytes, resultCacheBytes),
      scheduler_(
          runner::GridScheduler::Options{poolWorkers(options.jobs)})
{
}

SimServer::~SimServer()
{
    requestShutdown();
    // The member scheduler joins its workers on destruction, after
    // which no callback can touch this object again.
}

std::string
SimServer::endpoint() const
{
    return listener_.boundEndpoint().str();
}

std::size_t
SimServer::cacheSize() const
{
    return cache_.size();
}

MemoCacheStats
SimServer::cacheStats() const
{
    return cache_.stats();
}

void
SimServer::setCacheBackend(
    LruMemoCache<std::string, CachedResult>::LoadFn load,
    LruMemoCache<std::string, CachedResult>::StoreFn store)
{
    cache_.setBackend(std::move(load), std::move(store));
}

std::shared_ptr<const CachedResult>
SimServer::computeCached(const std::string &fingerprint,
                         const runner::Experiment &exp, bool *cached)
{
    bool computed = false;
    auto value = cache_.get(fingerprint, [&exp, &computed]() {
        computed = true;
        CachedResult result;
        if (exp.config.window.enabled()) {
            // Windowed grid point: keep the raw counters so the
            // result frame (and any later cache hit) carries the
            // stitchable delta.
            const SimulationDelta delta =
                runSimulationDelta(exp.config);
            result.result = finalizeResult(
                delta.workload, delta.scheme, delta.schemeStorageBits,
                delta.stats);
            result.hasDelta = true;
            result.delta = delta.stats;
        } else {
            result.result = runner::runExperiment(exp);
        }
        return result;
    });
    if (cached != nullptr)
        *cached = !computed;
    return value;
}

void
SimServer::log(const std::string &line)
{
    if (options_.log != nullptr)
        *options_.log << "shotgun-serve: " << line << std::endl;
}

void
SimServer::serve()
{
    log("listening on " + endpoint() + " (version " +
        cli::kVersion + ", " + std::to_string(scheduler_.workers()) +
        " workers)");

    // Reader threads flag themselves done so a long-running daemon
    // reclaims them as it accepts, not only at shutdown.
    struct Reader
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::vector<Reader> readers;
    auto reap = [&readers](bool all) {
        for (auto it = readers.begin(); it != readers.end();) {
            if (all || it->done->load()) {
                it->thread.join();
                it = readers.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (!stop_.load()) {
        Socket sock = listener_.accept();
        if (!sock.valid()) {
            if (stop_.load())
                break;
            // Persistent accept failure (EMFILE, ...): retry slowly
            // instead of spinning a core.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }
        reap(false);
        auto conn = std::make_shared<Connection>(std::move(sock));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            // Drop expired entries so the registry tracks live
            // connections, not the connection count ever accepted.
            connections_.erase(
                std::remove_if(connections_.begin(),
                               connections_.end(),
                               [](const std::weak_ptr<Connection> &w) {
                                   return w.expired();
                               }),
                connections_.end());
            connections_.push_back(conn);
        }
        // A shutdown that snapshotted connections_ before this
        // registration could not shut this socket down; re-check so
        // the connection's reader cannot outlive the accept loop.
        if (stop_.load())
            conn->channel.socket().shutdownBoth();
        auto done = std::make_shared<std::atomic<bool>>(false);
        readers.push_back(
            {std::thread([this, conn, done]() {
                 handleConnection(conn);
                 done->store(true);
             }),
             done});
    }

    // Shutdown: join the readers first (no thread can admit another
    // job), then cancel and drain the scheduler -- every admitted
    // job still gets its `done` frame (as cancelled) before exit.
    reap(true);
    scheduler_.cancelAll();
    scheduler_.waitIdle();
    log("shut down");
}

void
SimServer::requestShutdown()
{
    const bool was_stopped = stop_.exchange(true);
    // shutdown(2) + wake pipe, not close(2): serve() may be blocked
    // in accept() on this fd right now; the fd itself is reclaimed
    // when the listener is destroyed with the server, after serve()
    // returned.
    listener_.shutdownListener();
    std::vector<std::shared_ptr<Connection>> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &weak : connections_) {
            if (auto conn = weak.lock())
                live.push_back(std::move(conn));
        }
    }
    for (auto &conn : live)
        conn->channel.socket().shutdownBoth();
    scheduler_.cancelAll();
    if (!was_stopped)
        log("shutdown requested");
}

void
SimServer::handleSubmit(const std::shared_ptr<Connection> &conn,
                        const json::Value &frame)
{
    SubmitRequest request = decodeSubmit(frame);

    if (stop_.load())
        throw CodecError("server is shutting down");

    // Validate up front what would otherwise fatal() mid-simulation
    // and take down the daemon: a trace-backed workload needs a
    // readable, untruncated v2 trace here, long enough for the
    // requested run, recorded from the same program the submitted
    // config describes (the client read its header from the client's
    // copy of the file -- in a multi-machine deployment this server's
    // copy can differ).
    TraceProbeCache probed;
    for (const runner::Experiment &exp : request.grid) {
        std::string error;
        if (!validateExperimentTrace(exp, probed, error))
            throw CodecError(error);
    }

    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->total = job->request.grid.size();
    const std::uint64_t request_trace_id = job->request.traceId;
    const std::uint64_t request_parent_span = job->request.parentSpan;
    job->fingerprints.reserve(job->request.grid.size());
    for (const runner::Experiment &exp : job->request.grid)
        job->fingerprints.push_back(configFingerprint(exp.config));

    const unsigned cap = scheduler_.workers();
    job->budget =
        job->request.jobs == 0
            ? cap
            : static_cast<unsigned>(std::min<std::uint64_t>(
                  job->request.jobs, cap));

    Value fingerprints = Value::array();
    for (const std::string &fp : job->fingerprints)
        fingerprints.push(Value::string(fp));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job->id = nextJobId_++;
        jobs_.emplace(job->id, job);
    }

    // `accepted` must be on the wire before the job is admitted to
    // the scheduler, or a cache-hit job could stream results first
    // and the client would read a `result` frame as its submit reply.
    Value accepted = makeFrame("accepted");
    accepted.set("job", Value::number(job->id));
    accepted.set("total", Value::number(std::uint64_t{job->total}));
    accepted.set("fingerprints", std::move(fingerprints));
    conn->sendFrame(accepted);
    log("job " + std::to_string(job->id) + " accepted: " +
        job->request.experiment + ", " + std::to_string(job->total) +
        " points, budget " + std::to_string(job->budget));

    // Written by scheduler workers at distinct indices, read when
    // the index's ordered emission fires.
    auto cached_flags =
        std::make_shared<std::vector<char>>(job->total, 0);
    auto outcomes = std::make_shared<
        std::vector<std::shared_ptr<const CachedResult>>>(job->total);

    // For traced jobs the scheduler hands each point's observation
    // (phase timing + spans) to onObservation right before that
    // point's onResult, on the same emitter thread and never two
    // points of one job concurrently -- one slot bridges the pair.
    struct ObservationSlot
    {
        bool has = false;
        runner::GridScheduler::PointObservation value;
    };
    auto observation = std::make_shared<ObservationSlot>();

    runner::GridScheduler::JobHooks hooks;
    hooks.onObservation =
        [observation](std::size_t,
                      const runner::GridScheduler::PointObservation
                          &point) {
            observation->value = point;
            observation->has = true;
        };
    hooks.simulate = [this, job, cached_flags, outcomes](
                         std::size_t index,
                         const runner::Experiment &exp) {
        bool was_cached = false;
        auto value = computeCached(job->fingerprints[index], exp,
                                   &was_cached);
        if (was_cached) {
            job->cachedCount.fetch_add(1);
            (*cached_flags)[index] = 1;
        }
        (*outcomes)[index] = value;
        return value->result;
    };
    // Dispatch a job's own points longest-run-first (LPT): starting
    // the heavy windows early shortens the straggler tail when the
    // grid's points differ in simulated length. Emission order (and
    // thus every byte on the wire) is unaffected.
    hooks.costOf = [](std::size_t, const runner::Experiment &exp) {
        const SimWindow &window = exp.config.window;
        return window.skipInstructions +
               exp.config.warmupInstructions +
               (window.enabled() ? window.measureEnd
                                 : exp.config.measureInstructions);
    };
    // Points sharing a warmed-state checkpoint key dispatch as a
    // cohort: the first populates the checkpoint cache, the rest
    // restore instead of re-simulating the warmup (sim/checkpoint.hh).
    hooks.cohortOf = [](std::size_t, const runner::Experiment &exp) {
        return exp.config.warmupInstructions == 0
                   ? std::string()
                   : checkpointKey(exp.config, nullptr);
    };
    hooks.onStart = [this, job]() {
        job->state.store(Job::State::Running);
        log("job " + std::to_string(job->id) + " running");
    };
    // The hooks hold the submitting connection weakly: a client
    // that disconnects mid-job must not pin the socket fd (and pay
    // per-point frame encoding) for the rest of a long grid -- the
    // job still completes, warming the cache, it just stops
    // streaming.
    std::weak_ptr<Connection> owner = conn;
    hooks.onResult = [job, owner, cached_flags, outcomes,
                      observation](std::size_t index,
                                   const runner::Experiment &exp,
                                   const SimResult &result) {
        job->completed.fetch_add(1);
        const bool has_observation = observation->has;
        observation->has = false;
        auto conn = owner.lock();
        if (conn == nullptr)
            return;
        ResultEvent event;
        event.job = job->id;
        event.index = index;
        event.cached = (*cached_flags)[index] != 0;
        event.workload = exp.workload;
        event.label = exp.label;
        event.fingerprint = job->fingerprints[index];
        event.result = result;
        const std::shared_ptr<const CachedResult> &outcome =
            (*outcomes)[index];
        if (outcome != nullptr && outcome->hasDelta) {
            event.hasDelta = true;
            event.delta = outcome->delta;
        }
        if (has_observation) {
            event.spans = std::move(observation->value.spans);
            if (observation->value.timing.any()) {
                event.hasTiming = true;
                event.timing = observation->value.timing;
            }
        }
        conn->sendFrame(encodeResultEvent(event));
    };
    hooks.onDone = [this, job, owner](
                       const runner::GridScheduler::Outcome &outcome) {
        DoneEvent done;
        done.job = job->id;
        switch (outcome.status) {
          case runner::GridScheduler::Outcome::Status::Ok:
            job->state.store(Job::State::Ok);
            done.status = "ok";
            break;
          case runner::GridScheduler::Outcome::Status::Cancelled:
            job->state.store(Job::State::Cancelled);
            done.status = "cancelled";
            break;
          case runner::GridScheduler::Outcome::Status::Error:
            try {
                std::rethrow_exception(outcome.error);
            } catch (const std::exception &e) {
                job->message = e.what();
            } catch (...) {
                job->message = "unknown error";
            }
            job->state.store(Job::State::Error);
            done.status = "error";
            done.message = job->message;
            break;
        }
        done.completed = job->completed.load();
        done.cached = job->cachedCount.load();
        if (auto conn = owner.lock())
            conn->sendFrame(encodeDone(done));
        log("job " + std::to_string(job->id) + " " + done.status +
            " (" + std::to_string(done.completed) + "/" +
            std::to_string(job->total) + " points, " +
            std::to_string(done.cached) + " cached)");
        pruneJobs();
    };

    // A trace-carrying submit (or a server running with --trace-out)
    // marks the job traced: installing a TraceContext on this thread
    // for the duration of the admission is the scheduler's opt-in
    // signal (runner/grid_scheduler.hh). The client's trace id wins;
    // a tracing-enabled server fills in its own for bare submits.
    obs::TraceContext trace_ctx;
    std::unique_ptr<obs::ScopedTraceContext> trace_scope;
    if (request_trace_id != 0 || obs::tracer().enabled()) {
        trace_ctx.traceId = request_trace_id != 0
                                ? request_trace_id
                                : obs::tracer().defaultTraceId();
        trace_ctx.parentSpan = request_parent_span;
        trace_scope.reset(new obs::ScopedTraceContext(&trace_ctx));
    }

    // The grid moves into the scheduler (which owns it for the
    // job's lifetime); the Job keeps only its size and fingerprints.
    const std::uint64_t scheduler_id =
        scheduler_.submit(std::move(job->request.grid), job->budget,
                          job->request.priority, std::move(hooks));
    trace_scope.reset();
    bool cancel_now = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job->schedulerId = scheduler_id;
        cancel_now = job->cancelRequested;
    }
    // A cancel frame that raced the admission parked its request on
    // the job; honor it now that the scheduler knows the id.
    if (cancel_now || stop_.load())
        scheduler_.cancel(scheduler_id);
}

json::Value
SimServer::statusFrame()
{
    Value jobs = Value::array();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : jobs_) {
            const Job &job = *entry.second;
            JobStatus status;
            status.id = job.id;
            status.experiment = job.request.experiment;
            status.state = job.stateName();
            status.total = job.total;
            status.completed = job.completed.load();
            status.cached = job.cachedCount.load();
            status.budget = job.budget;
            jobs.push(encodeJobStatus(status));
        }
    }
    // Publish every cache's stats into the process metrics registry,
    // then render the frame objects *from the registry* -- the frame
    // and any other consumer (tests, future exporters) read the same
    // source, and the rendered field names/order match the old
    // hand-assembled objects byte for byte.
    obs::Registry &registry = obs::metrics();
    const MemoCacheStats cache_stats = cache_.stats();
    obs::publishCacheStats(registry, "serve.cache", cache_stats);
    Value cache =
        obs::cacheStatsJson(registry, "serve.cache", true);

    // Warmed-state checkpoint store and decoded-trace store stats,
    // process-wide (shared by every job), beside the result cache:
    // the three caches the one-pass grid pipeline rests on.
    obs::publishCacheStats(registry, "serve.checkpoint",
                           checkpointCache().stats());
    Value checkpoint =
        obs::cacheStatsJson(registry, "serve.checkpoint", false);

    publishTraceStoreStats(registry, "serve.traces",
                           decodedTraces().stats());
    Value traces = traceStoreStatsJson(registry, "serve.traces");

    Value server = Value::object();
    server.set("version", Value::string(cli::kVersion));
    server.set("protocol", Value::number(kProtocolVersion));
    server.set("endpoint", Value::string(endpoint()));
    server.set("cache_entries",
               Value::number(std::uint64_t{cache_stats.entries}));
    server.set("cache", std::move(cache));
    server.set("checkpoint", std::move(checkpoint));
    server.set("traces", std::move(traces));
    server.set("max_jobs",
               Value::number(std::uint64_t{scheduler_.workers()}));

    Value v = makeFrame("status");
    v.set("server", std::move(server));
    v.set("jobs", std::move(jobs));
    return v;
}

void
SimServer::handleConnection(std::shared_ptr<Connection> conn)
{
    std::string line;
    while (conn->channel.recvLine(line)) {
        Value reply;
        try {
            const Value frame = Value::parse(line);
            const std::string type = frameType(frame);
            if (type == "submit") {
                handleSubmit(conn, frame);
                continue; // handleSubmit sent `accepted` itself.
            } else if (type == "status") {
                reply = statusFrame();
            } else if (type == "ping") {
                reply = makeFrame("pong");
            } else if (type == "cancel") {
                const std::uint64_t id = frame.at("job").asU64();
                std::shared_ptr<Job> job;
                std::uint64_t scheduler_id = 0;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    auto it = jobs_.find(id);
                    if (it != jobs_.end()) {
                        job = it->second;
                        job->cancelRequested = true;
                        scheduler_id = job->schedulerId;
                    }
                }
                if (job == nullptr) {
                    reply = makeError("unknown job " +
                                      std::to_string(id));
                } else {
                    // Stops dispatch of the job's remaining points;
                    // in-flight points finish and the `done` frame
                    // reports `cancelled` truthfully.
                    if (scheduler_id != 0)
                        scheduler_.cancel(scheduler_id);
                    reply = makeFrame("cancelling");
                    reply.set("job", Value::number(id));
                }
            } else if (type == "shutdown") {
                conn->sendFrame(makeFrame("bye"));
                requestShutdown();
                break;
            } else {
                reply = makeError("unknown frame type \"" + type +
                                  "\"");
            }
        } catch (const json::JsonError &e) {
            // Malformed frame: reject it, keep the connection.
            reply = makeError(e.what());
        } catch (const std::exception &e) {
            // Anything else a frame provoked (filesystem errors,
            // allocation failure on a huge grid, ...) is that
            // frame's problem, never the daemon's.
            reply = makeError(std::string("internal error: ") +
                              e.what());
        }
        if (!conn->sendFrame(reply))
            break;
    }
}

void
SimServer::pruneJobs()
{
    // Keep a bounded tail of terminal jobs for `status`; a daemon
    // serving thousands of submits must not hold every grid forever.
    constexpr std::size_t kRetainedJobs = 64;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = jobs_.begin();
         it != jobs_.end() && jobs_.size() > kRetainedJobs;) {
        const Job::State state = it->second->state.load();
        if (state == Job::State::Queued || state == Job::State::Running)
            ++it;
        else
            it = jobs_.erase(it);
    }
}

} // namespace service
} // namespace shotgun
