#include "service/server.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/cli.hh"
#include "runner/thread_pool.hh"

namespace shotgun
{
namespace service
{

using json::Value;

/**
 * One client connection. Result frames are written from the job
 * dispatcher while command replies are written from the connection's
 * reader thread, hence the write mutex.
 */
struct SimServer::Connection
{
    explicit Connection(Socket sock) : channel(std::move(sock)) {}

    LineChannel channel;
    std::mutex writeMutex;

    /** False when the peer is gone; callers just stop streaming. */
    bool sendFrame(const Value &frame)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return channel.sendLine(frame.dump());
    }
};

struct SimServer::Job
{
    std::uint64_t id = 0;
    SubmitRequest request;
    std::vector<std::string> fingerprints; ///< Index-aligned.

    enum class State
    {
        Queued,
        Running,
        Ok,
        Cancelled,
        Error,
    };
    std::atomic<State> state{State::Queued};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> cachedCount{0};
    std::string message; ///< Failure detail, set before state.

    /** Submitting connection; results stream here while it lives. */
    std::weak_ptr<Connection> owner;

    const char *stateName() const
    {
        switch (state.load()) {
          case State::Queued: return "queued";
          case State::Running: return "running";
          case State::Ok: return "ok";
          case State::Cancelled: return "cancelled";
          case State::Error: return "error";
        }
        return "?";
    }
};

namespace
{

/** Internal cancellation signal thrown by the simulate hook. */
struct JobCancelled
{
};

} // namespace

SimServer::SimServer(const std::string &endpoint_spec,
                     ServerOptions options)
    : options_(options), listener_(Endpoint::parse(endpoint_spec))
{
}

SimServer::~SimServer()
{
    requestShutdown();
}

std::string
SimServer::endpoint() const
{
    return listener_.boundEndpoint().str();
}

std::size_t
SimServer::cacheSize() const
{
    return cache_.size();
}

void
SimServer::log(const std::string &line)
{
    if (options_.log != nullptr)
        *options_.log << "shotgun-serve: " << line << std::endl;
}

void
SimServer::serve()
{
    log("listening on " + endpoint() + " (version " +
        cli::kVersion + ")");
    std::thread dispatcher([this]() { dispatchLoop(); });

    // Reader threads flag themselves done so a long-running daemon
    // reclaims them as it accepts, not only at shutdown.
    struct Reader
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::vector<Reader> readers;
    auto reap = [&readers](bool all) {
        for (auto it = readers.begin(); it != readers.end();) {
            if (all || it->done->load()) {
                it->thread.join();
                it = readers.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (!stop_.load()) {
        Socket sock = listener_.accept();
        if (!sock.valid()) {
            if (stop_.load())
                break;
            // Persistent accept failure (EMFILE, ...): retry slowly
            // instead of spinning a core.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }
        reap(false);
        auto conn = std::make_shared<Connection>(std::move(sock));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            // Drop expired entries so the registry tracks live
            // connections, not the connection count ever accepted.
            connections_.erase(
                std::remove_if(connections_.begin(),
                               connections_.end(),
                               [](const std::weak_ptr<Connection> &w) {
                                   return w.expired();
                               }),
                connections_.end());
            connections_.push_back(conn);
        }
        // A shutdown that snapshotted connections_ before this
        // registration could not shut this socket down; re-check so
        // the connection's reader cannot outlive the accept loop.
        if (stop_.load())
            conn->channel.socket().shutdownBoth();
        auto done = std::make_shared<std::atomic<bool>>(false);
        readers.push_back(
            {std::thread([this, conn, done]() {
                 handleConnection(conn);
                 done->store(true);
             }),
             done});
    }

    // Shutdown: the dispatcher drains (cancelling) and exits; readers
    // see their sockets shut down and exit.
    queueCv_.notify_all();
    dispatcher.join();
    reap(true);
    log("shut down");
}

void
SimServer::requestShutdown()
{
    const bool was_stopped = stop_.exchange(true);
    // shutdown(2), not close(2): serve() may be blocked in accept()
    // on this fd right now; the fd itself is reclaimed when the
    // listener is destroyed with the server, after serve() returned.
    listener_.shutdownListener();
    std::vector<std::shared_ptr<Connection>> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &weak : connections_) {
            if (auto conn = weak.lock())
                live.push_back(std::move(conn));
        }
        for (auto &entry : jobs_)
            entry.second->cancelled.store(true);
    }
    for (auto &conn : live)
        conn->channel.socket().shutdownBoth();
    queueCv_.notify_all();
    if (!was_stopped)
        log("shutdown requested");
}

void
SimServer::handleSubmit(const std::shared_ptr<Connection> &conn,
                        const json::Value &frame)
{
    SubmitRequest request = decodeSubmit(frame);

    // Validate up front what would otherwise fatal() mid-simulation
    // and take down the daemon: a trace-backed workload needs a
    // readable, untruncated v2 trace here, long enough for the
    // requested run, recorded from the same program the submitted
    // config describes (the client read its header from the client's
    // copy of the file -- in a multi-machine deployment this server's
    // copy can differ).
    // One probe (open + header parse + size check) per distinct
    // path; per-experiment checks below reuse the parsed header.
    std::map<std::string,
             std::pair<std::uint64_t, std::string>>
        probed; // path -> (instructions, canonical program params)
    for (const runner::Experiment &exp : request.grid) {
        const std::string &path = exp.config.workload.tracePath;
        if (path.empty())
            continue;
        auto it = probed.find(path);
        if (it == probed.end()) {
            std::string error;
            TraceInfo info;
            if (!probeTraceFile(path, 0, error, &info))
                throw CodecError("experiment \"" + exp.workload +
                                 "/" + exp.label + "\": " + error);
            it = probed
                     .emplace(path,
                              std::make_pair(
                                  info.instructions,
                                  encodeProgramParams(
                                      info.preset.program)
                                      .dump()))
                     .first;
        }
        const std::uint64_t needed = exp.config.warmupInstructions +
                                     exp.config.measureInstructions;
        if (it->second.first < needed)
            throw CodecError(
                "experiment \"" + exp.workload + "/" + exp.label +
                "\": trace '" + path + "' holds " +
                std::to_string(it->second.first) +
                " instructions but the run needs " +
                std::to_string(needed) + "; record a longer trace");
        if (it->second.second !=
            encodeProgramParams(exp.config.workload.program).dump())
            throw CodecError(
                "experiment \"" + exp.workload + "/" + exp.label +
                "\": trace '" + path +
                "' on this server was recorded from different "
                "program parameters than the submitted workload "
                "(stale or re-recorded copy?)");
    }

    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->owner = conn;
    job->fingerprints.reserve(job->request.grid.size());
    for (const runner::Experiment &exp : job->request.grid)
        job->fingerprints.push_back(configFingerprint(exp.config));

    Value fingerprints = Value::array();
    for (const std::string &fp : job->fingerprints)
        fingerprints.push(Value::string(fp));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job->id = nextJobId_++;
        jobs_.emplace(job->id, job);
    }

    // `accepted` must be on the wire before the job can produce
    // result frames: enqueue only after sending, or a cache-hit job
    // could stream results past the dispatcher first and the client
    // would read a `result` frame as its submit reply.
    Value accepted = makeFrame("accepted");
    accepted.set("job", Value::number(job->id));
    accepted.set("total",
                 Value::number(std::uint64_t{job->request.grid.size()}));
    accepted.set("fingerprints", std::move(fingerprints));
    conn->sendFrame(accepted);
    log("job " + std::to_string(job->id) + " accepted: " +
        job->request.experiment + ", " +
        std::to_string(job->request.grid.size()) + " points");

    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(job);
    }
    queueCv_.notify_one();
}

json::Value
SimServer::statusFrame()
{
    Value jobs = Value::array();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : jobs_) {
            const Job &job = *entry.second;
            JobStatus status;
            status.id = job.id;
            status.experiment = job.request.experiment;
            status.state = job.stateName();
            status.total = job.request.grid.size();
            status.completed = job.completed.load();
            status.cached = job.cachedCount.load();
            jobs.push(encodeJobStatus(status));
        }
    }
    Value server = Value::object();
    server.set("version", Value::string(cli::kVersion));
    server.set("protocol", Value::number(kProtocolVersion));
    server.set("endpoint", Value::string(endpoint()));
    server.set("cache_entries",
               Value::number(std::uint64_t{cache_.size()}));
    server.set("max_jobs",
               Value::number(std::uint64_t{
                   options_.jobs != 0
                       ? options_.jobs
                       : runner::ThreadPool::hardwareJobs()}));

    Value v = makeFrame("status");
    v.set("server", std::move(server));
    v.set("jobs", std::move(jobs));
    return v;
}

void
SimServer::handleConnection(std::shared_ptr<Connection> conn)
{
    std::string line;
    while (conn->channel.recvLine(line)) {
        Value reply;
        try {
            const Value frame = Value::parse(line);
            const std::string type = frameType(frame);
            if (type == "submit") {
                handleSubmit(conn, frame);
                continue; // handleSubmit sent `accepted` itself.
            } else if (type == "status") {
                reply = statusFrame();
            } else if (type == "ping") {
                reply = makeFrame("pong");
            } else if (type == "cancel") {
                const std::uint64_t id = frame.at("job").asU64();
                std::shared_ptr<Job> job;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    auto it = jobs_.find(id);
                    if (it != jobs_.end())
                        job = it->second;
                }
                if (job == nullptr) {
                    reply = makeError("unknown job " +
                                      std::to_string(id));
                } else {
                    job->cancelled.store(true);
                    reply = makeFrame("cancelling");
                    reply.set("job", Value::number(id));
                }
            } else if (type == "shutdown") {
                conn->sendFrame(makeFrame("bye"));
                requestShutdown();
                break;
            } else {
                reply = makeError("unknown frame type \"" + type +
                                  "\"");
            }
        } catch (const json::JsonError &e) {
            // Malformed frame: reject it, keep the connection.
            reply = makeError(e.what());
        } catch (const std::exception &e) {
            // Anything else a frame provoked (filesystem errors,
            // allocation failure on a huge grid, ...) is that
            // frame's problem, never the daemon's.
            reply = makeError(std::string("internal error: ") +
                              e.what());
        }
        if (!conn->sendFrame(reply))
            break;
    }
}

void
SimServer::dispatchLoop()
{
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueCv_.wait(lock, [this]() {
                return stop_.load() || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stop_.load())
                    return;
                continue;
            }
            job = queue_.front();
            queue_.pop_front();
        }
        runJob(job);
        pruneJobs();
        // Drain-and-cancel continues after stop: every queued job
        // still gets its `done` frame (as cancelled) before exit.
    }
}

void
SimServer::pruneJobs()
{
    // Keep a bounded tail of terminal jobs for `status`; a daemon
    // serving thousands of submits must not hold every grid forever.
    constexpr std::size_t kRetainedJobs = 64;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = jobs_.begin();
         it != jobs_.end() && jobs_.size() > kRetainedJobs;) {
        const Job::State state = it->second->state.load();
        if (state == Job::State::Queued || state == Job::State::Running)
            ++it;
        else
            it = jobs_.erase(it);
    }
}

void
SimServer::runJob(const std::shared_ptr<Job> &job)
{
    auto owner = job->owner.lock();
    DoneEvent done;
    done.job = job->id;

    if (job->cancelled.load()) {
        job->state.store(Job::State::Cancelled);
        done.status = "cancelled";
        if (owner)
            owner->sendFrame(encodeDone(done));
        return;
    }

    job->state.store(Job::State::Running);
    log("job " + std::to_string(job->id) + " running");

    runner::RunnerOptions ropts;
    const unsigned cap = options_.jobs != 0
                             ? options_.jobs
                             : runner::ThreadPool::hardwareJobs();
    const unsigned requested =
        job->request.jobs == 0
            ? cap
            : static_cast<unsigned>(std::min<std::uint64_t>(
                  job->request.jobs, cap));
    ropts.jobs = requested;

    // Written by worker threads at distinct indices, read by the
    // collector thread after that index's future resolved.
    auto cached_flags =
        std::make_shared<std::vector<char>>(job->request.grid.size(), 0);

    ropts.simulate = [this, job, cached_flags](
                         std::size_t index,
                         const runner::Experiment &exp) {
        if (job->cancelled.load())
            throw JobCancelled{};
        bool computed = false;
        auto value = cache_.get(job->fingerprints[index],
                                [&exp, &computed]() {
                                    computed = true;
                                    return runner::runExperiment(exp);
                                });
        if (!computed) {
            job->cachedCount.fetch_add(1);
            (*cached_flags)[index] = 1;
        }
        return *value;
    };

    ropts.onResult = [job, owner, cached_flags](
                         std::size_t index,
                         const runner::Experiment &exp,
                         const SimResult &result) {
        job->completed.fetch_add(1);
        if (owner == nullptr)
            return;
        ResultEvent event;
        event.job = job->id;
        event.index = index;
        event.cached = (*cached_flags)[index] != 0;
        event.workload = exp.workload;
        event.label = exp.label;
        event.fingerprint = job->fingerprints[index];
        event.result = result;
        owner->sendFrame(encodeResultEvent(event));
    };

    try {
        runner::ExperimentRunner(ropts).run(job->request.grid);
        job->state.store(Job::State::Ok);
        done.status = "ok";
    } catch (const JobCancelled &) {
        job->state.store(Job::State::Cancelled);
        done.status = "cancelled";
    } catch (const std::exception &e) {
        job->message = e.what();
        job->state.store(Job::State::Error);
        done.status = "error";
        done.message = job->message;
    }

    done.completed = job->completed.load();
    done.cached = job->cachedCount.load();
    if (owner)
        owner->sendFrame(encodeDone(done));
    log("job " + std::to_string(job->id) + " " + done.status + " (" +
        std::to_string(done.completed) + "/" +
        std::to_string(job->request.grid.size()) + " points, " +
        std::to_string(done.cached) + " cached)");
}

} // namespace service
} // namespace shotgun
