/**
 * @file
 * The fleet control plane: one `shotgun-coord` daemon that owns a
 * global work-stealing queue of grid points and hands them to
 * registered `shotgun-serve` workers, so clients submit to a single
 * endpoint instead of enumerating workers.
 *
 * Topology (see src/fleet/README.md for the wire spec):
 *
 *   shotgun-submit --coordinator EP          shotgun-serve w1..wN
 *        |  submit/status/cancel                  |  register+heartbeat
 *        v                                        v  (1 control conn)
 *   +---------------------- shotgun-coord ----------------------+
 *   | priority/cost-ordered task queue | worker registry        |
 *   | result cache (LRU + disk)       | heartbeat monitor       |
 *   +------------------------------------------------------------+
 *                  ^ steal -> work -> result (1 conn per slot)
 *
 * Clients speak the ordinary service protocol (protocol.hh): the
 * coordinator accepts `submit` and streams `result`/`done` frames in
 * strict grid order, exactly like a SimServer, so ServiceClient and
 * all its sharding/stitching machinery work against a coordinator
 * unchanged -- and the assembled output stays byte-identical to an
 * in-process run.
 *
 * Scheduling: queued tasks are ordered by job priority (the submit
 * frame's fair-share weight, descending), then simulated length
 * (descending -- longest-measured-first, the LPT placement that
 * minimizes the straggler tail), then admission order. Any idle
 * worker slot steals the head of that queue; there is no static
 * assignment, so a fast worker simply steals more.
 *
 * Fault tolerance: a worker that closes its connections, or whose
 * heartbeat goes missing for `heartbeatMissLimit` intervals, is
 * declared dead and every point in flight on it is requeued at the
 * head of its job's class for the survivors -- results it already
 * returned are kept, and a late duplicate result from a worker that
 * was wrongly declared dead is dropped, so every grid point lands
 * exactly once. Simulations are pure functions of their config, so
 * re-running a lost point on any worker yields identical bytes.
 *
 * Results are cached by config fingerprint in an LRU memo cache
 * with an optional persistent directory backend (disk_cache.hh):
 * a resubmitted grid is answered without touching any worker, even
 * across a coordinator restart.
 */

#ifndef SHOTGUN_FLEET_COORDINATOR_HH
#define SHOTGUN_FLEET_COORDINATOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/memo.hh"
#include "fleet/disk_cache.hh"
#include "service/protocol.hh"
#include "service/socket.hh"

namespace shotgun
{
namespace fleet
{

struct CoordinatorOptions
{
    /** Byte budget of the in-memory result cache; 0 unbounded. */
    std::size_t cacheBytes = 0;

    /**
     * Persistent cache directory; empty disables persistence. The
     * directory is created if absent and survives restarts.
     */
    std::string cacheDir;

    /**
     * Byte bound on the persistent cache directory; 0 unbounded.
     * Oldest entries are trimmed first (DiskResultCache).
     */
    std::uint64_t cacheDirMaxBytes = 0;

    /** Expected worker heartbeat interval. */
    unsigned heartbeatIntervalMs = 1000;

    /**
     * Heartbeats a worker may miss before it is declared dead and
     * its in-flight points are requeued on the survivors.
     */
    unsigned heartbeatMissLimit = 3;

    /** Log stream for fleet events; nullptr is quiet. */
    std::ostream *log = nullptr;
};

class FleetCoordinator
{
  public:
    /** Bind and listen immediately; throws SocketError on failure. */
    FleetCoordinator(const std::string &endpoint_spec,
                     CoordinatorOptions options = {});
    ~FleetCoordinator();

    FleetCoordinator(const FleetCoordinator &) = delete;
    FleetCoordinator &operator=(const FleetCoordinator &) = delete;

    /** Resolved listen address, e.g. "127.0.0.1:34127". */
    std::string endpoint() const;

    /**
     * Accept and serve clients and workers until a `shutdown` frame
     * arrives or requestShutdown() is called. Unfinished jobs get a
     * cancelled `done` frame before this returns.
     */
    void serve();

    /** Initiate shutdown from any thread. */
    void requestShutdown();

    /** Result-cache counters (backendHits counts disk answers). */
    MemoCacheStats cacheStats() const;

    /** Workers currently registered and not declared dead. */
    std::size_t liveWorkers() const;

    /** Queued (not yet dispatched) tasks right now. */
    std::size_t queueDepth() const;

  private:
    struct Connection;
    struct Worker;
    struct Slot;
    struct Job;
    struct Task;

    /** Queue order: priority desc, cost desc, admission asc. */
    struct TaskOrder
    {
        bool operator()(const Task *a, const Task *b) const;
    };

    /** (connection, encoded frame) pairs sent outside the mutex. */
    using SendBatch = std::vector<
        std::pair<std::shared_ptr<Connection>, std::string>>;

    void handleConnection(std::shared_ptr<Connection> conn);
    bool handleClientFrame(const std::shared_ptr<Connection> &conn,
                           const json::Value &frame);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const json::Value &frame);
    void runWorkerControl(const std::shared_ptr<Connection> &conn,
                          const json::Value &frame);
    void runWorkerSlot(const std::shared_ptr<Connection> &conn,
                       const json::Value &frame);
    void handleWorkResult(const std::shared_ptr<Slot> &slot,
                          const json::Value &frame);

    /** Match queued tasks to parked slots; fills `sends`. */
    void pumpLocked(SendBatch &sends);

    /** Drop a job's queued tasks (cancel/failure). Lock held. */
    void dropQueuedLocked(const std::shared_ptr<Job> &job);

    /**
     * Stream the job's ready prefix in grid order and, when the job
     * has no pending tasks left, its `done` frame. Safe from any
     * thread; concurrent calls for one job never interleave frames.
     */
    void emitJob(const std::shared_ptr<Job> &job);

    /** Declare a worker dead and tear its connections down. */
    void declareDead(std::uint64_t worker_id,
                     const std::string &reason);

    void monitorLoop();
    json::Value statusFrame();
    void pruneJobsLocked();
    void sendBatch(SendBatch &sends);
    void log(const std::string &line);

    CoordinatorOptions options_;
    service::Listener listener_;
    std::atomic<bool> stop_{false};

    mutable std::mutex mutex_; ///< Registry, queue, jobs, workers.
    std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
    std::map<std::uint64_t, std::shared_ptr<Worker>> workers_;
    std::map<std::uint64_t, Task *> tasksById_; ///< Undone tasks.
    std::set<Task *, TaskOrder> queue_;         ///< Queued tasks.
    std::deque<std::shared_ptr<Slot>> parked_;  ///< Idle steals.
    std::vector<std::weak_ptr<Connection>> connections_;
    std::uint64_t nextJobId_ = 1;
    std::uint64_t nextWorkerId_ = 1;
    std::uint64_t nextTaskId_ = 1;

    std::condition_variable monitorCv_;
    std::thread monitor_;

    std::unique_ptr<DiskResultCache> disk_;
    LruMemoCache<std::string, service::CachedResult> cache_;
};

} // namespace fleet
} // namespace shotgun

#endif // SHOTGUN_FLEET_COORDINATOR_HH
