/**
 * @file
 * The worker side of the fleet: a FleetWorker rides inside a
 * `shotgun-serve --coordinator` daemon and pulls grid points from a
 * FleetCoordinator while the embedded SimServer keeps serving direct
 * client connections as before.
 *
 * Connections (all outbound -- workers behind NAT or a container
 * network need no reachable address):
 *  - one *control* connection: `register` once, then a heartbeat
 *    every heartbeatMs carrying the worker's cache counters;
 *  - one *work* connection per slot: `attach`, then a steal ->
 *    work -> result loop. A steal with no queued work parks on the
 *    coordinator until work arrives, so idle workers cost nothing.
 *
 * Every pulled point is validated (validateExperimentTrace) before
 * it is simulated -- a missing or stale trace on this machine is
 * reported as an error result, never a fatal() that would kill the
 * daemon -- and computed through the SimServer's fingerprint cache
 * (SimServer::computeCached), so fleet work and direct submissions
 * share one cache (and one --cache-dir persistence).
 *
 * Failures reconnect with backoff: a coordinator restart, a dropped
 * control connection, or a dead slot socket each just retries; the
 * coordinator requeues whatever this worker had in flight the
 * moment it notices (EOF or missed heartbeats), so a reconnecting
 * worker never strands work.
 */

#ifndef SHOTGUN_FLEET_WORKER_HH
#define SHOTGUN_FLEET_WORKER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hh"
#include "service/socket.hh"

namespace shotgun
{
namespace fleet
{

struct WorkerOptions
{
    /** Coordinator endpoint spec ("host:port" or "unix:<path>"). */
    std::string coordinator;

    /** Operator-facing name shown in --fleet-status. */
    std::string name = "worker";

    /** Concurrent simulation slots offered to the coordinator. */
    unsigned slots = 1;

    /** Heartbeat period; also paces reconnect backoff. */
    unsigned heartbeatMs = 1000;

    /** Log stream; nullptr is quiet. */
    std::ostream *log = nullptr;
};

class FleetWorker
{
  public:
    /** Does not connect yet; start() spawns the fleet threads. */
    FleetWorker(service::SimServer &server, WorkerOptions options);
    ~FleetWorker();

    FleetWorker(const FleetWorker &) = delete;
    FleetWorker &operator=(const FleetWorker &) = delete;

    void start();

    /** Tear every connection down and join the threads. Idempotent. */
    void stop();

    /** Points computed and returned to the coordinator so far. */
    std::uint64_t completed() const { return completed_.load(); }

  private:
    void controlLoop();
    void slotLoop(unsigned slot_index);

    /** Register a live channel so stop() can unblock its reader. */
    std::shared_ptr<service::LineChannel>
    adoptChannel(service::Socket sock);

    /** Interruptible sleep; false when stopping. */
    bool sleepMs(unsigned ms);

    void log(const std::string &line);

    service::SimServer &server_;
    WorkerOptions options_;
    service::Endpoint coordinator_;

    std::atomic<bool> stop_{false};
    std::atomic<bool> started_{false};

    /** Coordinator-assigned id; 0 until registered. */
    std::atomic<std::uint64_t> workerId_{0};

    std::atomic<std::uint64_t> completed_{0};

    std::mutex mutex_; ///< channels_ and the sleep cv.
    std::condition_variable stopCv_;
    std::vector<std::weak_ptr<service::LineChannel>> channels_;

    std::vector<std::thread> threads_;
};

} // namespace fleet
} // namespace shotgun

#endif // SHOTGUN_FLEET_WORKER_HH
