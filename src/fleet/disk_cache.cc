#include "fleet/disk_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "service/codec.hh"

namespace shotgun
{
namespace fleet
{

using json::Value;

namespace
{

/** mkdir -p: create every missing component of `dir`. */
bool
makeDirs(const std::string &dir)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        const std::size_t slash = dir.find('/', pos);
        partial = slash == std::string::npos ? dir
                                             : dir.substr(0, slash);
        pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
        if (partial.empty())
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/**
 * Fingerprints are 16 lowercase hex digits (codec.hh); anything else
 * must not be turned into a path component.
 */
bool
safeFingerprint(const std::string &fingerprint)
{
    if (fingerprint.empty() || fingerprint.size() > 64)
        return false;
    for (char c : fingerprint) {
        const bool ok = (c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f');
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

DiskResultCache::DiskResultCache(std::string dir)
    : dir_(std::move(dir))
{
    if (dir_.empty())
        throw std::runtime_error("disk cache: empty directory");
    while (dir_.size() > 1 && dir_.back() == '/')
        dir_.pop_back();
    if (!makeDirs(dir_))
        throw std::runtime_error("disk cache: cannot create '" +
                                 dir_ + "': " + strerror(errno));
    // Probe writability now: a daemon should fail to start rather
    // than discover a read-only cache directory store by store.
    const std::string probe = dir_ + "/.probe." +
                              std::to_string(::getpid());
    std::ofstream out(probe, std::ios::trunc);
    if (!out || !(out << "ok\n")) {
        throw std::runtime_error("disk cache: '" + dir_ +
                                 "' is not writable");
    }
    out.close();
    ::unlink(probe.c_str());
}

std::string
DiskResultCache::entryPath(const std::string &fingerprint) const
{
    return dir_ + "/" + fingerprint + ".json";
}

bool
DiskResultCache::load(const std::string &fingerprint,
                      service::CachedResult &out) const
{
    if (!safeFingerprint(fingerprint))
        return false;
    std::ifstream in(entryPath(fingerprint));
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const Value v = Value::parse(text.str());
        // The embedded fingerprint guards against a file copied or
        // renamed across keys: a mismatch is damage, hence a miss.
        if (v.at("fingerprint").asString() != fingerprint)
            return false;
        service::CachedResult cached;
        cached.result = service::decodeSimResult(v.at("result"));
        if (const Value *delta = v.find("delta")) {
            cached.hasDelta = true;
            cached.delta = service::decodeStatsDelta(*delta);
        }
        out = std::move(cached);
        return true;
    } catch (const json::JsonError &) {
        return false;
    }
}

void
DiskResultCache::store(const std::string &fingerprint,
                       const service::CachedResult &value) const
{
    if (!safeFingerprint(fingerprint))
        return;
    Value v = Value::object();
    v.set("fingerprint", Value::string(fingerprint));
    v.set("result", service::encodeSimResult(value.result));
    if (value.hasDelta)
        v.set("delta", service::encodeStatsDelta(value.delta));

    // Atomic publish: write a per-process tmp file in the same
    // directory, then rename over the final name. Readers see the
    // old entry, no entry, or the complete new entry -- never a
    // truncated one.
    const std::string path = entryPath(fingerprint);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out || !(out << v.dump() << '\n')) {
            ::unlink(tmp.c_str());
            return;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        ::unlink(tmp.c_str());
}

std::size_t
DiskResultCache::entryCount() const
{
    DIR *d = ::opendir(dir_.c_str());
    if (d == nullptr)
        return 0;
    std::size_t count = 0;
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        const std::string suffix = ".json";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            ++count;
    }
    ::closedir(d);
    return count;
}

} // namespace fleet
} // namespace shotgun
