#include "fleet/disk_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "service/codec.hh"

namespace shotgun
{
namespace fleet
{

using json::Value;

namespace
{

/** mkdir -p: create every missing component of `dir`. */
bool
makeDirs(const std::string &dir)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        const std::size_t slash = dir.find('/', pos);
        partial = slash == std::string::npos ? dir
                                             : dir.substr(0, slash);
        pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
        if (partial.empty())
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/**
 * Fingerprints are 16 lowercase hex digits (codec.hh); anything else
 * must not be turned into a path component.
 */
bool
safeFingerprint(const std::string &fingerprint)
{
    if (fingerprint.empty() || fingerprint.size() > 64)
        return false;
    for (char c : fingerprint) {
        const bool ok = (c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f');
        if (!ok)
            return false;
    }
    return true;
}

/** One completed (.json) entry found by scanEntries. */
struct EntryInfo
{
    std::string name; ///< File name within the cache directory.
    std::uint64_t bytes = 0;
    std::int64_t mtime = 0; ///< Seconds; ties broken by name.
};

/** Every completed entry with its size and modification time. */
std::vector<EntryInfo>
scanEntries(const std::string &dir)
{
    std::vector<EntryInfo> entries;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return entries;
    const std::string suffix = ".json";
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        struct stat st;
        if (::stat((dir + "/" + name).c_str(), &st) != 0)
            continue; // Raced with a concurrent trim: skip.
        EntryInfo info;
        info.name = name;
        info.bytes = static_cast<std::uint64_t>(st.st_size);
        info.mtime = static_cast<std::int64_t>(st.st_mtime);
        entries.push_back(std::move(info));
    }
    ::closedir(d);
    return entries;
}

} // namespace

DiskResultCache::DiskResultCache(std::string dir,
                                 std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    if (dir_.empty())
        throw std::runtime_error("disk cache: empty directory");
    while (dir_.size() > 1 && dir_.back() == '/')
        dir_.pop_back();
    if (!makeDirs(dir_))
        throw std::runtime_error("disk cache: cannot create '" +
                                 dir_ + "': " + strerror(errno));
    // Probe writability now: a daemon should fail to start rather
    // than discover a read-only cache directory store by store.
    const std::string probe = dir_ + "/.probe." +
                              std::to_string(::getpid());
    std::ofstream out(probe, std::ios::trunc);
    if (!out || !(out << "ok\n")) {
        throw std::runtime_error("disk cache: '" + dir_ +
                                 "' is not writable");
    }
    out.close();
    ::unlink(probe.c_str());
}

std::string
DiskResultCache::entryPath(const std::string &fingerprint) const
{
    return dir_ + "/" + fingerprint + ".json";
}

bool
DiskResultCache::load(const std::string &fingerprint,
                      service::CachedResult &out) const
{
    if (!safeFingerprint(fingerprint))
        return false;
    std::ifstream in(entryPath(fingerprint));
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const Value v = Value::parse(text.str());
        // The embedded fingerprint guards against a file copied or
        // renamed across keys: a mismatch is damage, hence a miss.
        if (v.at("fingerprint").asString() != fingerprint)
            return false;
        service::CachedResult cached;
        cached.result = service::decodeSimResult(v.at("result"));
        if (const Value *delta = v.find("delta")) {
            cached.hasDelta = true;
            cached.delta = service::decodeStatsDelta(*delta);
        }
        out = std::move(cached);
        return true;
    } catch (const json::JsonError &) {
        return false;
    }
}

void
DiskResultCache::store(const std::string &fingerprint,
                       const service::CachedResult &value) const
{
    if (!safeFingerprint(fingerprint))
        return;
    Value v = Value::object();
    v.set("fingerprint", Value::string(fingerprint));
    v.set("result", service::encodeSimResult(value.result));
    if (value.hasDelta)
        v.set("delta", service::encodeStatsDelta(value.delta));

    // Atomic publish: write a per-process tmp file in the same
    // directory, then rename over the final name. Readers see the
    // old entry, no entry, or the complete new entry -- never a
    // truncated one.
    const std::string path = entryPath(fingerprint);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out || !(out << v.dump() << '\n')) {
            ::unlink(tmp.c_str());
            return;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return;
    }
    if (maxBytes_ != 0)
        trimToBudget(path);
}

void
DiskResultCache::trimToBudget(const std::string &keep) const
{
    std::vector<EntryInfo> entries = scanEntries(dir_);
    std::uint64_t total = 0;
    for (const EntryInfo &entry : entries)
        total += entry.bytes;
    if (total <= maxBytes_)
        return;
    // Oldest first; name breaks mtime ties so concurrent trimmers
    // converge on the same victims instead of each picking its own.
    std::sort(entries.begin(), entries.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });
    for (const EntryInfo &entry : entries) {
        if (total <= maxBytes_)
            break;
        const std::string path = dir_ + "/" + entry.name;
        if (path == keep)
            continue; // Never trim the entry just stored.
        if (::unlink(path.c_str()) == 0 || errno == ENOENT)
            total -= entry.bytes;
    }
}

std::size_t
DiskResultCache::entryCount() const
{
    return scanEntries(dir_).size();
}

std::uint64_t
DiskResultCache::totalBytes() const
{
    std::uint64_t total = 0;
    for (const EntryInfo &entry : scanEntries(dir_))
        total += entry.bytes;
    return total;
}

} // namespace fleet
} // namespace shotgun
