#include "fleet/worker.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/client.hh"
#include "sim/checkpoint.hh"

namespace shotgun
{
namespace fleet
{

using json::Value;
using service::LineChannel;

FleetWorker::FleetWorker(service::SimServer &server,
                         WorkerOptions options)
    : server_(server), options_(std::move(options)),
      coordinator_(service::Endpoint::parse(options_.coordinator))
{
    if (options_.slots == 0)
        options_.slots = 1;
    if (options_.heartbeatMs == 0)
        options_.heartbeatMs = 1000;
}

FleetWorker::~FleetWorker()
{
    stop();
}

void
FleetWorker::start()
{
    if (started_.exchange(true))
        return;
    threads_.emplace_back([this]() { controlLoop(); });
    for (unsigned i = 0; i < options_.slots; ++i)
        threads_.emplace_back([this, i]() { slotLoop(i); });
}

void
FleetWorker::stop()
{
    if (!started_.load())
        return;
    stop_.store(true);
    std::vector<std::shared_ptr<LineChannel>> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &weak : channels_) {
            if (auto channel = weak.lock())
                live.push_back(std::move(channel));
        }
    }
    // shutdown(2) unblocks readers parked in recv on the
    // coordinator; the channel objects stay alive through the
    // shared_ptrs their loops hold.
    for (auto &channel : live)
        channel->socket().shutdownBoth();
    stopCv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
    threads_.clear();
}

std::shared_ptr<LineChannel>
FleetWorker::adoptChannel(service::Socket sock)
{
    auto channel = std::make_shared<LineChannel>(std::move(sock));
    std::lock_guard<std::mutex> lock(mutex_);
    channels_.erase(
        std::remove_if(channels_.begin(), channels_.end(),
                       [](const std::weak_ptr<LineChannel> &w) {
                           return w.expired();
                       }),
        channels_.end());
    channels_.push_back(channel);
    // A stop() racing this adoption may have missed the new
    // channel; close it here so the caller's loop exits promptly.
    if (stop_.load())
        channel->socket().shutdownBoth();
    return channel;
}

bool
FleetWorker::sleepMs(unsigned ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    stopCv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this]() { return stop_.load(); });
    return !stop_.load();
}

void
FleetWorker::log(const std::string &line)
{
    if (options_.log != nullptr)
        *options_.log << "fleet-worker: " << line << std::endl;
}

void
FleetWorker::controlLoop()
{
    while (!stop_.load()) {
        try {
            auto channel =
                adoptChannel(service::connectTo(coordinator_));
            // Acks are tiny and immediate; a coordinator that stays
            // silent for several heartbeat periods is wedged and
            // the reconnect path should take over.
            channel->socket().setRecvTimeout(
                std::max(2000u, options_.heartbeatMs * 4));

            service::RegisterRequest reg;
            reg.name = options_.name;
            reg.slots = options_.slots;
            if (!channel->sendLine(
                    service::encodeRegister(reg).dump()))
                throw service::SocketError("register send failed");
            std::string line;
            if (!channel->recvLine(line))
                throw service::SocketError("no register ack");
            const Value ack = Value::parse(line);
            if (service::frameType(ack) != "ack")
                throw service::ServiceError(
                    "register rejected: " + line);
            workerId_.store(ack.at("worker").asU64());
            log("registered as worker " +
                std::to_string(workerId_.load()) + " at " +
                coordinator_.str());

            while (sleepMs(options_.heartbeatMs)) {
                service::HeartbeatFrame hb;
                hb.worker = workerId_.load();
                hb.completed = completed_.load();
                const MemoCacheStats stats = server_.cacheStats();
                hb.cacheHits = stats.hits;
                hb.cacheMisses = stats.misses;
                hb.backendHits = stats.backendHits;
                const MemoCacheStats cp = checkpointCache().stats();
                hb.checkpointHits = cp.hits;
                hb.checkpointMisses = cp.misses;
                // Per-phase simulation time, process-lifetime totals
                // from the always-on registry counters: the
                // coordinator folds these into --fleet-status's
                // per-phase breakdown table.
                obs::Registry &registry = obs::metrics();
                hb.phaseDecodeUs =
                    registry.counter("sim.phase.decode_us")->value();
                hb.phaseWarmupUs =
                    registry.counter("sim.phase.warmup_us")->value();
                hb.phaseRestoreUs =
                    registry.counter("sim.phase.restore_us")->value();
                hb.phaseMeasureUs =
                    registry.counter("sim.phase.measure_us")->value();
                hb.phasePoints =
                    registry.counter("sim.points")->value();
                // Measure-latency percentiles from the per-point
                // histogram the simulator records; stays all-zero
                // (member omitted on the wire) until the first
                // point finishes.
                for (const obs::MetricSample &s :
                     registry.snapshot()) {
                    if (s.kind != obs::MetricSample::Kind::Histogram ||
                        s.name != "sim.phase.measure_us_hist")
                        continue;
                    hb.measureP50Us = obs::histogramQuantile(s, 0.50);
                    hb.measureP95Us = obs::histogramQuantile(s, 0.95);
                    hb.measureP99Us = obs::histogramQuantile(s, 0.99);
                }
                if (!channel->sendLine(
                        service::encodeHeartbeat(hb).dump()))
                    break;
                if (!channel->recvLine(line))
                    break;
                // The reply is an ack (or an error frame we can only
                // log); either way the connection is alive.
            }
        } catch (const std::exception &e) {
            if (!stop_.load())
                log(std::string("control connection lost: ") +
                    e.what());
        }
        // Stale id: slots attached under it are torn down by the
        // coordinator (their worker died with the control conn), and
        // their loops re-attach once a new id is assigned.
        workerId_.store(0);
        if (!sleepMs(options_.heartbeatMs))
            break;
    }
}

void
FleetWorker::slotLoop(unsigned slot_index)
{
    service::TraceProbeCache probed;
    while (!stop_.load()) {
        const std::uint64_t id = workerId_.load();
        if (id == 0) {
            // Not registered (yet, or between reconnects).
            if (!sleepMs(std::max(50u, options_.heartbeatMs / 4)))
                break;
            continue;
        }
        try {
            auto channel =
                adoptChannel(service::connectTo(coordinator_));
            Value attach = service::makeFrame("attach");
            attach.set("worker", Value::number(id));
            if (!channel->sendLine(attach.dump()))
                throw service::SocketError("attach send failed");
            std::string line;
            if (!channel->recvLine(line))
                throw service::SocketError("no attach ack");
            const Value ack = Value::parse(line);
            if (service::frameType(ack) != "ack")
                throw service::ServiceError("attach rejected: " +
                                            line);

            // Steal -> work -> result, parked on the coordinator
            // while the queue is empty. No receive deadline: an idle
            // fleet legitimately sits here for hours; stop() and
            // coordinator death both surface as a closed socket.
            for (;;) {
                if (!channel->sendLine(
                        service::makeFrame("steal").dump()))
                    break;
                if (!channel->recvLine(line))
                    break;
                const Value frame = Value::parse(line);
                const std::string type = service::frameType(frame);
                if (type != "work")
                    continue; // e.g. an error frame; keep stealing.
                const service::WorkItem item =
                    service::decodeWork(frame);

                service::WorkResult out;
                out.task = item.task;
                std::string error;
                if (!service::validateExperimentTrace(
                        item.experiment, probed, error)) {
                    out.ok = false;
                    out.message = error;
                } else {
                    try {
                        out.fingerprint = service::configFingerprint(
                            item.experiment.config);
                        bool was_cached = false;
                        // A trace-carrying work item (or a worker
                        // running with --trace-out): record this
                        // point's phase spans and timing, ship them
                        // back inside the result frame. computeCached
                        // runs the simulation on this thread, so the
                        // thread-local context covers it.
                        obs::SpanCollector collector;
                        obs::PointTiming timing;
                        obs::TraceContext trace_ctx;
                        std::unique_ptr<obs::ScopedTraceContext>
                            trace_scope;
                        if (item.traceId != 0 ||
                            obs::tracer().enabled()) {
                            trace_ctx.traceId =
                                item.traceId != 0
                                    ? item.traceId
                                    : obs::tracer().defaultTraceId();
                            trace_ctx.parentSpan = item.parentSpan;
                            trace_ctx.collector = &collector;
                            trace_ctx.timing = &timing;
                            trace_ctx.lane =
                                "slot-" + std::to_string(slot_index);
                            trace_scope.reset(
                                new obs::ScopedTraceContext(
                                    &trace_ctx));
                        }
                        auto value = server_.computeCached(
                            out.fingerprint, item.experiment,
                            &was_cached);
                        trace_scope.reset();
                        out.spans = collector.take();
                        if (timing.any()) {
                            out.hasTiming = true;
                            out.timing = timing;
                        }
                        out.cached = was_cached;
                        out.result = value->result;
                        out.hasDelta = value->hasDelta;
                        if (value->hasDelta)
                            out.delta = value->delta;
                    } catch (const std::exception &e) {
                        out.ok = false;
                        out.message = e.what();
                    }
                }
                if (!channel->sendLine(
                        service::encodeWorkResult(out).dump()))
                    break;
                if (out.ok)
                    completed_.fetch_add(1);
            }
        } catch (const std::exception &e) {
            if (!stop_.load())
                log("slot " + std::to_string(slot_index) +
                    " connection lost: " + e.what());
        }
        if (!sleepMs(options_.heartbeatMs))
            break;
    }
}

} // namespace fleet
} // namespace shotgun
