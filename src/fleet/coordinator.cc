#include "fleet/coordinator.hh"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/cli.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace shotgun
{
namespace fleet
{

using json::Value;
using service::CachedResult;
using service::CodecError;
using service::LineChannel;
using service::makeError;
using service::makeFrame;
using Clock = std::chrono::steady_clock;

namespace
{

/** Same crude-but-monotone sizing the SimServer cache uses. */
std::size_t
resultCacheBytes(const std::string &fingerprint,
                 const CachedResult &cached)
{
    return fingerprint.size() + sizeof(CachedResult) +
           cached.result.workload.size() +
           cached.result.scheme.size();
}

/**
 * Relative simulated length of one grid point: the queue's
 * longest-measured-first key. Matches the instruction count the
 * trace validator requires, so "cost" and "work" agree.
 */
std::uint64_t
experimentCost(const runner::Experiment &exp)
{
    const SimWindow &window = exp.config.window;
    return window.skipInstructions + exp.config.warmupInstructions +
           (window.enabled() ? window.measureEnd
                             : exp.config.measureInstructions);
}

std::uint64_t
elapsedMs(Clock::time_point since, Clock::time_point now)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - since)
            .count());
}

} // namespace

/**
 * One peer connection (client, worker control, or worker slot).
 * Frames are written from several threads (the owning reader plus
 * emitters and the dispatch pump), hence the write mutex.
 */
struct FleetCoordinator::Connection
{
    explicit Connection(service::Socket sock)
        : channel(std::move(sock))
    {
    }

    LineChannel channel;
    std::mutex writeMutex;

    bool sendFrame(const Value &frame)
    {
        return sendRaw(frame.dump());
    }

    bool sendRaw(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return channel.sendLine(line);
    }
};

struct FleetCoordinator::Job
{
    std::uint64_t id = 0;
    std::string experiment;
    std::uint64_t priority = 1;
    std::vector<runner::Experiment> grid;
    std::vector<std::string> fingerprints; ///< Index-aligned.
    std::vector<std::shared_ptr<const CachedResult>> outcomes;
    std::vector<char> ready;      ///< Outcome available, per index.
    std::vector<char> cachedFlag; ///< Served from a cache, per index.
    std::size_t total = 0;
    std::size_t pendingTasks = 0; ///< Tasks not yet Done.
    std::size_t nextEmit = 0;     ///< First unemitted index.
    bool emitting = false;        ///< A thread streams the prefix.
    bool cancelled = false;
    bool failed = false;
    bool doneSent = false;
    std::string message; ///< First failure detail.
    std::uint64_t cachedCount = 0;

    /**
     * Tracing: non-zero when the submit carried a trace id (or the
     * coordinator runs with --trace-out and stamps its own). The
     * per-point vectors hold spans/timing shipped back by workers,
     * relayed to the client in result frames; sized only for traced
     * jobs so untraced jobs pay nothing.
     */
    std::uint64_t traceId = 0;
    std::uint64_t traceParent = 0;
    std::vector<std::vector<obs::SpanRecord>> pointSpans;
    std::vector<obs::PointTiming> pointTimings;
    std::vector<char> pointHasTiming;

    /**
     * The submitting connection. Strong on purpose: during shutdown
     * the final cancelled `done` must still reach the client after
     * its reader thread exited. A client that disconnects mid-job
     * has this cleared by its reader (so a vanished client doesn't
     * pin the socket or pay frame encoding for the rest of a long
     * grid), and pruning the finished job drops the ref anyway.
     */
    std::shared_ptr<Connection> owner;

    /** One per grid point; never resized after admission, so raw
     * Task pointers in the queue/registry stay valid. */
    std::vector<Task> tasks;

    const char *stateName() const
    {
        if (failed)
            return doneSent ? "error" : "running";
        if (doneSent)
            return cancelled && nextEmit < total ? "cancelled" : "ok";
        if (nextEmit > 0 || pendingTasks < total)
            return "running";
        return "queued";
    }
};

struct FleetCoordinator::Task
{
    enum class State
    {
        Queued,
        InFlight,
        Done,
    };

    std::uint64_t id = 0;
    Job *job = nullptr; ///< Parent; outlives every registry pointer.
    std::uint64_t jobId = 0;
    std::size_t index = 0;       ///< Grid index within the job.
    std::uint64_t priority = 1;  ///< Copied from the job (ordering).
    std::uint64_t cost = 0;      ///< experimentCost() of the point.
    State state = State::Done;   ///< Cache-prefilled unless queued.
    Slot *slot = nullptr;        ///< Owning slot while InFlight.

    /** Queue-entry timestamps for the "queued" span (traced jobs). */
    std::uint64_t queuedWallUs = 0;
    Clock::time_point queuedAt;
};

struct FleetCoordinator::Worker
{
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t slots = 1; ///< Advertised concurrent slots.
    Clock::time_point registeredAt;
    Clock::time_point lastHeartbeat;
    std::uint64_t completed = 0; ///< Results accepted from it.
    service::HeartbeatFrame stats; ///< Last reported cache counters.
    bool dead = false;
    std::shared_ptr<Connection> control;
    std::vector<std::shared_ptr<Slot>> attached;
};

struct FleetCoordinator::Slot
{
    std::shared_ptr<Connection> conn;
    std::shared_ptr<Worker> worker;
    Task *inflight = nullptr; ///< Valid while that task is InFlight.
    bool parked = false;      ///< Waiting in parked_ for work.
};

bool
FleetCoordinator::TaskOrder::operator()(const Task *a,
                                        const Task *b) const
{
    if (a->priority != b->priority)
        return a->priority > b->priority;
    if (a->cost != b->cost)
        return a->cost > b->cost;
    return a->id < b->id;
}

FleetCoordinator::FleetCoordinator(const std::string &endpoint_spec,
                                   CoordinatorOptions options)
    : options_(options),
      listener_(service::Endpoint::parse(endpoint_spec)),
      cache_(options.cacheBytes, resultCacheBytes)
{
    if (!options_.cacheDir.empty()) {
        disk_.reset(new DiskResultCache(options_.cacheDir,
                                        options_.cacheDirMaxBytes));
        DiskResultCache *disk = disk_.get();
        cache_.setBackend(
            [disk](const std::string &key, CachedResult &out) {
                return disk->load(key, out);
            },
            [disk](const std::string &key,
                   const CachedResult &value) {
                disk->store(key, value);
            });
    }
    monitor_ = std::thread([this]() { monitorLoop(); });
}

FleetCoordinator::~FleetCoordinator()
{
    requestShutdown();
    monitorCv_.notify_all();
    if (monitor_.joinable())
        monitor_.join();
}

std::string
FleetCoordinator::endpoint() const
{
    return listener_.boundEndpoint().str();
}

MemoCacheStats
FleetCoordinator::cacheStats() const
{
    return cache_.stats();
}

std::size_t
FleetCoordinator::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t live = 0;
    for (const auto &entry : workers_) {
        if (!entry.second->dead)
            ++live;
    }
    return live;
}

std::size_t
FleetCoordinator::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
FleetCoordinator::log(const std::string &line)
{
    if (options_.log != nullptr)
        *options_.log << "shotgun-coord: " << line << std::endl;
}

void
FleetCoordinator::serve()
{
    log("listening on " + endpoint() + " (version " + cli::kVersion +
        ", heartbeat " + std::to_string(options_.heartbeatIntervalMs) +
        "ms x" + std::to_string(options_.heartbeatMissLimit) + ")");

    struct Reader
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::vector<Reader> readers;
    auto reap = [&readers](bool all) {
        for (auto it = readers.begin(); it != readers.end();) {
            if (all || it->done->load()) {
                it->thread.join();
                it = readers.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (!stop_.load()) {
        service::Socket sock = listener_.accept();
        if (!sock.valid()) {
            if (stop_.load())
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }
        reap(false);
        auto conn = std::make_shared<Connection>(std::move(sock));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            connections_.erase(
                std::remove_if(
                    connections_.begin(), connections_.end(),
                    [](const std::weak_ptr<Connection> &w) {
                        return w.expired();
                    }),
                connections_.end());
            connections_.push_back(conn);
        }
        if (stop_.load())
            conn->channel.socket().shutdownBoth();
        auto done = std::make_shared<std::atomic<bool>>(false);
        readers.push_back(
            {std::thread([this, conn, done]() {
                 handleConnection(conn);
                 done->store(true);
             }),
             done});
    }

    // Join every reader first (no thread can admit work or requeue a
    // task afterwards), then flush a cancelled `done` to any job
    // still open so clients are never left waiting on a vanished
    // coordinator.
    reap(true);
    std::vector<std::shared_ptr<Job>> open;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &entry : jobs_) {
            if (!entry.second->doneSent)
                open.push_back(entry.second);
        }
        for (auto &job : open) {
            job->cancelled = true;
            dropQueuedLocked(job);
        }
    }
    for (auto &job : open)
        emitJob(job);
    log("shut down");
}

void
FleetCoordinator::requestShutdown()
{
    const bool was_stopped = stop_.exchange(true);
    listener_.shutdownListener();
    std::vector<std::shared_ptr<Connection>> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &weak : connections_) {
            if (auto conn = weak.lock())
                live.push_back(std::move(conn));
        }
    }
    // Read-side only: the blocked readers wake and tear down, but
    // serve()'s final pass can still write a cancelled `done` frame
    // to clients whose jobs were still open.
    for (auto &conn : live)
        conn->channel.socket().shutdownRead();
    monitorCv_.notify_all();
    if (!was_stopped)
        log("shutdown requested");
}

void
FleetCoordinator::handleConnection(std::shared_ptr<Connection> conn)
{
    // The first frame classifies the peer: workers open with
    // `register` (control) or `attach` (slot), anything else is a
    // client connection served with the ordinary protocol loop.
    std::string line;
    if (!conn->channel.recvLine(line))
        return;
    Value first;
    std::string type;
    try {
        first = Value::parse(line);
        type = service::frameType(first);
    } catch (const json::JsonError &e) {
        conn->sendFrame(makeError(e.what()));
        return;
    }
    if (type == "register") {
        runWorkerControl(conn, first);
        return;
    }
    if (type == "attach") {
        runWorkerSlot(conn, first);
        return;
    }

    if (handleClientFrame(conn, first)) {
        while (conn->channel.recvLine(line)) {
            Value frame;
            try {
                frame = Value::parse(line);
            } catch (const json::JsonError &e) {
                if (!conn->sendFrame(makeError(e.what())))
                    break;
                continue;
            }
            if (!handleClientFrame(conn, frame))
                break;
        }
    }
    // Client gone: stop pinning its socket and encoding frames for
    // its jobs (they keep running and warm the cache). During
    // shutdown the owner stays set instead, so serve()'s final pass
    // can still deliver the cancelled `done` frame.
    if (!stop_.load()) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &entry : jobs_) {
            if (entry.second->owner == conn)
                entry.second->owner.reset();
        }
    }
}

bool
FleetCoordinator::handleClientFrame(
    const std::shared_ptr<Connection> &conn, const json::Value &frame)
{
    Value reply;
    try {
        const std::string type = service::frameType(frame);
        if (type == "submit") {
            handleSubmit(conn, frame);
            return true; // handleSubmit sent `accepted` itself.
        } else if (type == "status") {
            reply = statusFrame();
        } else if (type == "ping") {
            reply = makeFrame("pong");
        } else if (type == "cancel") {
            const std::uint64_t id = frame.at("job").asU64();
            std::shared_ptr<Job> job;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = jobs_.find(id);
                if (it != jobs_.end()) {
                    job = it->second;
                    job->cancelled = true;
                    dropQueuedLocked(job);
                }
            }
            if (job == nullptr) {
                reply = makeError("unknown job " +
                                  std::to_string(id));
            } else {
                // In-flight points finish on their workers; queued
                // ones are gone. The `done` frame reports cancelled
                // once the last in-flight point returns.
                emitJob(job);
                reply = makeFrame("cancelling");
                reply.set("job", Value::number(id));
            }
        } else if (type == "shutdown") {
            conn->sendFrame(makeFrame("bye"));
            requestShutdown();
            return false;
        } else {
            reply =
                makeError("unknown frame type \"" + type + "\"");
        }
    } catch (const json::JsonError &e) {
        reply = makeError(e.what());
    } catch (const std::exception &e) {
        reply = makeError(std::string("internal error: ") + e.what());
    }
    return conn->sendFrame(reply);
}

void
FleetCoordinator::handleSubmit(
    const std::shared_ptr<Connection> &conn, const json::Value &frame)
{
    service::SubmitRequest request = service::decodeSubmit(frame);
    if (stop_.load())
        throw CodecError("coordinator is shutting down");

    // Traces are NOT validated here: the coordinator need not share
    // a filesystem with its workers. Workers validate each point
    // before simulating and report a failure as an error result,
    // which fails the job -- same outcome as a SimServer rejecting
    // the submit, just detected where the file lives.
    auto job = std::make_shared<Job>();
    job->experiment = request.experiment;
    job->priority = std::max<std::uint64_t>(1, request.priority);
    job->grid = std::move(request.grid);
    job->total = job->grid.size();
    job->owner = conn;
    job->fingerprints.reserve(job->total);
    for (const runner::Experiment &exp : job->grid)
        job->fingerprints.push_back(
            service::configFingerprint(exp.config));
    job->outcomes.resize(job->total);
    job->ready.assign(job->total, 0);
    job->cachedFlag.assign(job->total, 0);
    job->tasks.resize(job->total);

    // The client's trace id wins; a coordinator running with
    // --trace-out stamps its own onto bare submits so its workers'
    // spans still land in one coherent trace.
    job->traceId = request.traceId != 0
                       ? request.traceId
                       : (obs::tracer().enabled()
                              ? obs::tracer().defaultTraceId()
                              : 0);
    job->traceParent = request.parentSpan;
    if (job->traceId != 0) {
        job->pointSpans.resize(job->total);
        job->pointTimings.resize(job->total);
        job->pointHasTiming.assign(job->total, 0);
    }

    // Cache prefill (memory, then disk): a point seen before is
    // answered without touching any worker. tryGet never runs a
    // simulation, so doing it on the reader thread is cheap.
    std::size_t fresh = 0;
    for (std::size_t i = 0; i < job->total; ++i) {
        if (auto value = cache_.tryGet(job->fingerprints[i])) {
            job->outcomes[i] = std::move(value);
            job->ready[i] = 1;
            job->cachedFlag[i] = 1;
            ++job->cachedCount;
        } else {
            ++fresh;
        }
    }
    job->pendingTasks = fresh;

    Value fingerprints = Value::array();
    for (const std::string &fp : job->fingerprints)
        fingerprints.push(Value::string(fp));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job->id = nextJobId_++;
        jobs_.emplace(job->id, job);
    }

    // `accepted` goes on the wire before any task can complete (and
    // before the cache-hit prefix is streamed), so the client's
    // submit reply is never a `result` frame.
    Value accepted = makeFrame("accepted");
    accepted.set("job", Value::number(job->id));
    accepted.set("total", Value::number(std::uint64_t{job->total}));
    accepted.set("fingerprints", std::move(fingerprints));
    conn->sendFrame(accepted);
    log("job " + std::to_string(job->id) + " accepted: " +
        job->experiment + ", " + std::to_string(job->total) +
        " points (" + std::to_string(job->total - fresh) +
        " cached), priority " + std::to_string(job->priority));

    SendBatch sends;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job->cancelled || stop_.load()) {
            // A cancel raced the admission (or shutdown began):
            // nothing is queued; the `done` frame below reports
            // cancelled over whatever the cache prefilled.
            job->cancelled = true;
            job->pendingTasks = 0;
        } else {
            for (std::size_t i = 0; i < job->total; ++i) {
                if (job->ready[i])
                    continue;
                Task &task = job->tasks[i];
                task.id = nextTaskId_++;
                task.job = job.get();
                task.jobId = job->id;
                task.index = i;
                task.priority = job->priority;
                task.cost = experimentCost(job->grid[i]);
                task.state = Task::State::Queued;
                if (job->traceId != 0) {
                    task.queuedWallUs = obs::wallClockUs();
                    task.queuedAt = Clock::now();
                }
                queue_.insert(&task);
                tasksById_.emplace(task.id, &task);
            }
            pumpLocked(sends);
        }
    }
    sendBatch(sends);
    emitJob(job);
}

void
FleetCoordinator::pumpLocked(SendBatch &sends)
{
    while (!queue_.empty() && !parked_.empty()) {
        auto slot = parked_.front();
        parked_.pop_front();
        slot->parked = false;
        Task *task = *queue_.begin();
        queue_.erase(queue_.begin());
        task->state = Task::State::InFlight;
        task->slot = slot.get();
        slot->inflight = task;
        service::WorkItem item;
        item.task = task->id;
        item.experiment = task->job->grid[task->index];
        item.traceId = task->job->traceId;
        item.parentSpan = task->job->traceParent;
        // The coordinator's own contribution to the trace: how long
        // the point sat in the fleet queue before a slot stole it.
        if (task->job->traceId != 0 && obs::tracer().enabled()) {
            obs::SpanRecord span;
            span.traceId = task->job->traceId;
            span.id = obs::tracer().nextSpanId();
            span.parent = task->job->traceParent;
            span.name = "queued";
            span.category = "fleet";
            span.process = obs::tracer().processName();
            span.lane = "queue";
            span.startUs = task->queuedWallUs;
            span.durUs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - task->queuedAt)
                    .count());
            obs::tracer().record(std::move(span));
        }
        sends.emplace_back(slot->conn,
                           service::encodeWork(item).dump());
    }
}

void
FleetCoordinator::sendBatch(SendBatch &sends)
{
    // A failed send means the slot's socket died; its reader will
    // hit EOF and requeue the task, so the failure needs no handling
    // here.
    for (auto &send : sends)
        send.first->sendRaw(send.second);
    sends.clear();
}

void
FleetCoordinator::dropQueuedLocked(const std::shared_ptr<Job> &job)
{
    for (auto it = queue_.begin(); it != queue_.end();) {
        Task *task = *it;
        if (task->job != job.get()) {
            ++it;
            continue;
        }
        it = queue_.erase(it);
        tasksById_.erase(task->id);
        task->state = Task::State::Done;
        --job->pendingTasks;
    }
}

void
FleetCoordinator::emitJob(const std::shared_ptr<Job> &job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto conn = job->owner; // Copied under the lock; may be null.
    if (job->emitting)
        return; // The active emitter re-carves before it stops.
    job->emitting = true;
    for (;;) {
        const std::size_t from = job->nextEmit;
        std::size_t to = from;
        while (to < job->total && job->ready[to])
            ++to;
        if (to == from)
            break;
        job->nextEmit = to;
        lock.unlock();
        const bool trace_emit =
            job->traceId != 0 && obs::tracer().enabled();
        const std::uint64_t emit_start_us =
            trace_emit ? obs::wallClockUs() : 0;
        const Clock::time_point emit_start = Clock::now();
        if (conn != nullptr) {
            for (std::size_t i = from; i < to; ++i) {
                service::ResultEvent event;
                event.job = job->id;
                event.index = i;
                event.cached = job->cachedFlag[i] != 0;
                event.workload = job->grid[i].workload;
                event.label = job->grid[i].label;
                event.fingerprint = job->fingerprints[i];
                event.result = job->outcomes[i]->result;
                if (job->outcomes[i]->hasDelta) {
                    event.hasDelta = true;
                    event.delta = job->outcomes[i]->delta;
                }
                if (job->traceId != 0) {
                    event.spans = job->pointSpans[i];
                    if (job->pointHasTiming[i]) {
                        event.hasTiming = true;
                        event.timing = job->pointTimings[i];
                    }
                }
                conn->sendFrame(service::encodeResultEvent(event));
            }
        }
        if (trace_emit) {
            obs::SpanRecord span;
            span.traceId = job->traceId;
            span.id = obs::tracer().nextSpanId();
            span.parent = job->traceParent;
            span.name = "emit";
            span.category = "fleet";
            span.process = obs::tracer().processName();
            span.lane = "emit";
            span.startUs = emit_start_us;
            span.durUs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - emit_start)
                    .count());
            obs::tracer().record(std::move(span));
        }
        lock.lock();
    }
    job->emitting = false;

    service::DoneEvent done;
    bool send_done = false;
    if (!job->doneSent && job->pendingTasks == 0) {
        job->doneSent = true;
        send_done = true;
        done.job = job->id;
        if (job->failed) {
            done.status = "error";
            done.message = job->message;
        } else if (job->nextEmit == job->total) {
            done.status = "ok";
        } else {
            done.status = "cancelled";
        }
        done.completed = job->nextEmit;
        done.cached = job->cachedCount;
        pruneJobsLocked();
    }
    lock.unlock();
    if (send_done) {
        if (conn != nullptr)
            conn->sendFrame(service::encodeDone(done));
        log("job " + std::to_string(done.job) + " " + done.status +
            " (" + std::to_string(done.completed) + "/" +
            std::to_string(job->total) + " points, " +
            std::to_string(done.cached) + " cached)");
    }
}

void
FleetCoordinator::runWorkerControl(
    const std::shared_ptr<Connection> &conn, const json::Value &frame)
{
    service::RegisterRequest reg;
    try {
        reg = service::decodeRegister(frame);
    } catch (const json::JsonError &e) {
        conn->sendFrame(makeError(e.what()));
        return;
    }

    auto worker = std::make_shared<Worker>();
    worker->name = reg.name;
    worker->slots = reg.slots;
    worker->registeredAt = Clock::now();
    worker->lastHeartbeat = worker->registeredAt;
    worker->control = conn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        worker->id = nextWorkerId_++;
        workers_.emplace(worker->id, worker);
    }
    Value ack = makeFrame("ack");
    ack.set("worker", Value::number(worker->id));
    conn->sendFrame(ack);
    log("worker " + std::to_string(worker->id) + " (" + worker->name +
        ") registered, " + std::to_string(reg.slots) + " slots");

    std::string line;
    while (conn->channel.recvLine(line)) {
        Value reply = makeFrame("ack");
        try {
            const Value hb_frame = Value::parse(line);
            const std::string type = service::frameType(hb_frame);
            if (type == "heartbeat") {
                const service::HeartbeatFrame hb =
                    service::decodeHeartbeat(hb_frame);
                std::lock_guard<std::mutex> lock(mutex_);
                worker->lastHeartbeat = Clock::now();
                worker->stats = hb;
            } else {
                reply = makeError("unexpected frame type \"" + type +
                                  "\" on a control connection");
            }
        } catch (const json::JsonError &e) {
            reply = makeError(e.what());
        }
        if (!conn->sendFrame(reply))
            break;
    }
    declareDead(worker->id, "control connection closed");
}

void
FleetCoordinator::runWorkerSlot(
    const std::shared_ptr<Connection> &conn, const json::Value &frame)
{
    auto slot = std::make_shared<Slot>();
    slot->conn = conn;
    try {
        const std::uint64_t worker_id = frame.at("worker").asU64();
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = workers_.find(worker_id);
        if (it == workers_.end() || it->second->dead)
            throw CodecError("unknown worker " +
                             std::to_string(worker_id) +
                             " (register first)");
        slot->worker = it->second;
        it->second->attached.push_back(slot);
    } catch (const json::JsonError &e) {
        conn->sendFrame(makeError(e.what()));
        return;
    }
    conn->sendFrame(makeFrame("ack"));

    std::string line;
    while (conn->channel.recvLine(line)) {
        try {
            const Value slot_frame = Value::parse(line);
            const std::string type = service::frameType(slot_frame);
            if (type == "steal") {
                SendBatch sends;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!slot->parked && slot->inflight == nullptr) {
                        slot->parked = true;
                        parked_.push_back(slot);
                    }
                    pumpLocked(sends);
                }
                sendBatch(sends);
            } else if (type == "result") {
                handleWorkResult(slot, slot_frame);
            } else {
                conn->sendFrame(makeError(
                    "unexpected frame type \"" + type +
                    "\" on a work connection"));
            }
        } catch (const json::JsonError &e) {
            if (!conn->sendFrame(makeError(e.what())))
                break;
        }
    }

    // Slot teardown: whatever was in flight here lands back in the
    // queue for the survivors -- unless it already completed (late
    // results were accepted above) or the daemon is shutting down.
    std::shared_ptr<Job> open_job;
    SendBatch sends;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = parked_.begin(); it != parked_.end(); ++it) {
            if (it->get() == slot.get()) {
                parked_.erase(it);
                break;
            }
        }
        slot->parked = false;
        Task *task = slot->inflight;
        slot->inflight = nullptr;
        if (task != nullptr && task->state == Task::State::InFlight &&
            task->slot == slot.get()) {
            task->slot = nullptr;
            if (stop_.load()) {
                task->state = Task::State::Done;
                tasksById_.erase(task->id);
                --task->job->pendingTasks;
                auto jt = jobs_.find(task->jobId);
                if (jt != jobs_.end())
                    open_job = jt->second;
            } else {
                task->state = Task::State::Queued;
                queue_.insert(task);
                log("task " + std::to_string(task->id) +
                    " requeued (worker slot lost)");
            }
        }
        if (slot->worker != nullptr) {
            auto &attached = slot->worker->attached;
            attached.erase(
                std::remove(attached.begin(), attached.end(), slot),
                attached.end());
        }
        pumpLocked(sends);
    }
    sendBatch(sends);
    if (open_job != nullptr)
        emitJob(open_job);
}

void
FleetCoordinator::handleWorkResult(const std::shared_ptr<Slot> &slot,
                                   const json::Value &frame)
{
    service::WorkResult wr = service::decodeWorkResult(frame);
    std::shared_ptr<Job> job;
    std::string cache_key;
    std::shared_ptr<const CachedResult> value;
    std::vector<obs::SpanRecord> tracer_spans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = tasksById_.find(wr.task);
        if (it == tasksById_.end())
            return; // Late duplicate from a declared-dead worker.
        Task *task = it->second;
        if (task->state != Task::State::InFlight ||
            task->slot != slot.get())
            return; // Requeued elsewhere; this copy is stale.
        task->state = Task::State::Done;
        task->slot = nullptr;
        slot->inflight = nullptr;
        tasksById_.erase(it);
        auto jt = jobs_.find(task->jobId);
        if (jt != jobs_.end())
            job = jt->second;
        --task->job->pendingTasks;
        slot->worker->completed += 1;
        if (!wr.ok) {
            if (!task->job->failed) {
                task->job->failed = true;
                task->job->message = wr.message;
            }
            if (job != nullptr)
                dropQueuedLocked(job);
        } else {
            value = std::make_shared<const CachedResult>(
                CachedResult{wr.result, wr.hasDelta, wr.delta});
            task->job->outcomes[task->index] = value;
            task->job->ready[task->index] = 1;
            if (wr.cached) {
                task->job->cachedFlag[task->index] = 1;
                ++task->job->cachedCount;
            }
            cache_key = task->job->fingerprints[task->index];
            // Worker spans: into the coordinator's own trace file
            // (--trace-out merges the whole fleet into one JSON) and
            // into the job for relay to the client.
            if (obs::tracer().enabled() && !wr.spans.empty())
                tracer_spans = wr.spans;
            if (task->job->traceId != 0) {
                task->job->pointSpans[task->index] =
                    std::move(wr.spans);
                if (wr.hasTiming) {
                    task->job->pointHasTiming[task->index] = 1;
                    task->job->pointTimings[task->index] = wr.timing;
                }
            }
        }
    }
    if (!tracer_spans.empty())
        obs::tracer().record(std::move(tracer_spans));
    if (value != nullptr) {
        // Outside the registry mutex: put() write-throughs to disk.
        cache_.put(cache_key,
                   CachedResult{std::move(wr.result), wr.hasDelta,
                                wr.delta});
    }
    if (job != nullptr)
        emitJob(job);
}

void
FleetCoordinator::declareDead(std::uint64_t worker_id,
                              const std::string &reason)
{
    std::vector<std::shared_ptr<Connection>> conns;
    std::string name;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = workers_.find(worker_id);
        if (it == workers_.end() || it->second->dead)
            return;
        auto worker = it->second;
        worker->dead = true;
        name = worker->name;
        conns.push_back(worker->control);
        for (const auto &slot : worker->attached)
            conns.push_back(slot->conn);
        workers_.erase(it);
    }
    log("worker " + std::to_string(worker_id) + " (" + name +
        ") dead: " + reason);
    // Shutting the sockets down unblocks the slot readers, whose
    // teardown requeues whatever this worker had in flight.
    for (auto &conn : conns)
        conn->channel.socket().shutdownBoth();
}

void
FleetCoordinator::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto tick = std::chrono::milliseconds(
        std::max(1u, options_.heartbeatIntervalMs / 2));
    while (!stop_.load()) {
        monitorCv_.wait_for(lock, tick,
                            [this]() { return stop_.load(); });
        if (stop_.load())
            break;
        const Clock::time_point now = Clock::now();
        const std::uint64_t limit_ms =
            std::uint64_t{options_.heartbeatIntervalMs} *
            options_.heartbeatMissLimit;
        std::vector<std::uint64_t> expired;
        for (const auto &entry : workers_) {
            if (!entry.second->dead &&
                elapsedMs(entry.second->lastHeartbeat, now) >
                    limit_ms)
                expired.push_back(entry.first);
        }
        if (expired.empty())
            continue;
        lock.unlock();
        for (std::uint64_t id : expired)
            declareDead(id, "missed " +
                                std::to_string(
                                    options_.heartbeatMissLimit) +
                                " heartbeats");
        lock.lock();
    }
}

json::Value
FleetCoordinator::statusFrame()
{
    const Clock::time_point now = Clock::now();
    Value jobs = Value::array();
    Value workers = Value::array();
    std::uint64_t queue_depth = 0;
    std::uint64_t inflight = 0;
    std::uint64_t parked = 0;
    std::uint64_t total_slots = 0;
    std::uint64_t checkpoint_hits = 0;
    std::uint64_t checkpoint_misses = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : jobs_) {
            const Job &job = *entry.second;
            service::JobStatus status;
            status.id = job.id;
            status.experiment = job.experiment;
            status.state = job.stateName();
            status.total = job.total;
            status.completed = job.nextEmit;
            status.cached = job.cachedCount;
            jobs.push(encodeJobStatus(status));
        }
        for (const auto &entry : workers_) {
            const Worker &worker = *entry.second;
            service::WorkerStatus status;
            status.id = worker.id;
            status.name = worker.name;
            status.slots = worker.slots;
            for (const auto &slot : worker.attached) {
                if (slot->inflight != nullptr)
                    ++status.inflight;
            }
            status.completed = worker.completed;
            status.alive = !worker.dead;
            status.heartbeatAgeMs =
                elapsedMs(worker.lastHeartbeat, now);
            const std::uint64_t up_ms =
                elapsedMs(worker.registeredAt, now);
            status.throughput =
                up_ms == 0 ? 0.0
                           : static_cast<double>(worker.completed) *
                                 1000.0 /
                                 static_cast<double>(up_ms);
            status.cacheHits = worker.stats.cacheHits;
            status.cacheMisses = worker.stats.cacheMisses;
            status.backendHits = worker.stats.backendHits;
            status.checkpointHits = worker.stats.checkpointHits;
            status.checkpointMisses = worker.stats.checkpointMisses;
            status.phaseDecodeUs = worker.stats.phaseDecodeUs;
            status.phaseWarmupUs = worker.stats.phaseWarmupUs;
            status.phaseRestoreUs = worker.stats.phaseRestoreUs;
            status.phaseMeasureUs = worker.stats.phaseMeasureUs;
            status.phasePoints = worker.stats.phasePoints;
            status.measureP50Us = worker.stats.measureP50Us;
            status.measureP95Us = worker.stats.measureP95Us;
            status.measureP99Us = worker.stats.measureP99Us;
            // Heartbeat freshness per worker, published as registry
            // gauges so liveness is inspectable from the same source
            // the frame reads.
            obs::metrics()
                .gauge("fleet.worker." + worker.name +
                       ".heartbeat_age_ms")
                ->set(static_cast<std::int64_t>(
                    status.heartbeatAgeMs));
            checkpoint_hits += status.checkpointHits;
            checkpoint_misses += status.checkpointMisses;
            inflight += status.inflight;
            total_slots += worker.slots;
            workers.push(encodeWorkerStatus(status));
        }
        queue_depth = queue_.size();
        parked = parked_.size();
    }

    // Registry-rendered (see obs/metrics.hh): publish the stats,
    // then read the frame object back out of the gauges -- same
    // bytes as the old hand-assembled object.
    const MemoCacheStats cache_stats = cache_.stats();
    obs::publishCacheStats(obs::metrics(), "coord.cache",
                           cache_stats);
    Value cache =
        obs::cacheStatsJson(obs::metrics(), "coord.cache", true);

    Value fleet = Value::object();
    fleet.set("workers", std::move(workers));
    fleet.set("queue_depth", Value::number(queue_depth));
    fleet.set("inflight", Value::number(inflight));
    fleet.set("parked_slots", Value::number(parked));
    fleet.set("total_slots", Value::number(total_slots));
    // Fleet-wide warmed-state checkpoint reuse, summed over the
    // workers' last heartbeats (the coordinator itself never
    // simulates, so it has no local checkpoint store to report).
    fleet.set("checkpoint_hits", Value::number(checkpoint_hits));
    fleet.set("checkpoint_misses", Value::number(checkpoint_misses));

    Value server = Value::object();
    server.set("version", Value::string(cli::kVersion));
    server.set("protocol",
               Value::number(service::kProtocolVersion));
    server.set("endpoint", Value::string(endpoint()));
    server.set("role", Value::string("coordinator"));
    server.set("cache_entries",
               Value::number(std::uint64_t{cache_stats.entries}));
    server.set("cache", std::move(cache));
    server.set("max_jobs", Value::number(total_slots));

    Value v = makeFrame("status");
    v.set("server", std::move(server));
    v.set("jobs", std::move(jobs));
    v.set("fleet", std::move(fleet));
    return v;
}

void
FleetCoordinator::pruneJobsLocked()
{
    constexpr std::size_t kRetainedJobs = 64;
    for (auto it = jobs_.begin();
         it != jobs_.end() && jobs_.size() > kRetainedJobs;) {
        if (it->second->doneSent)
            it = jobs_.erase(it);
        else
            ++it;
    }
}

} // namespace fleet
} // namespace shotgun
