/**
 * @file
 * Persistent result cache: one JSON file per config fingerprint in a
 * flat directory, holding the canonical encoding of a
 * service::CachedResult (the derived result plus, for windowed
 * points, the raw stitchable counters). Plugged into an
 * LruMemoCache as its write-through backend (memo.hh setBackend), it
 * makes a daemon's fingerprint cache survive restarts: the in-memory
 * LRU keeps the hot set, the directory keeps everything, and a miss
 * after a restart is answered from disk instead of re-simulating.
 *
 * Writes are atomic (tmp file + rename in the same directory), so a
 * crash mid-store leaves at worst a stray .tmp file, never a
 * truncated entry; a reader that finds a damaged or foreign file
 * treats it as a miss. Results are pure functions of their
 * fingerprint, so entries never need invalidation -- the same
 * caveat as configFingerprint(): re-recording a different workload
 * over an existing trace path aliases entries. Don't do that.
 *
 * Shared by the coordinator (fleet-wide cache) and by
 * shotgun-serve --cache-dir (per-worker cache); the service layer
 * itself stays storage-ignorant and only sees the memo-cache
 * backend callbacks.
 */

#ifndef SHOTGUN_FLEET_DISK_CACHE_HH
#define SHOTGUN_FLEET_DISK_CACHE_HH

#include <cstdint>
#include <string>

#include "service/server.hh"

namespace shotgun
{
namespace fleet
{

class DiskResultCache
{
  public:
    /**
     * Create/open the cache directory (parents included). Throws
     * std::runtime_error when the directory cannot be created or is
     * not writable -- a daemon should refuse to start with a broken
     * cache rather than silently run without persistence.
     *
     * `max_bytes` bounds the directory's total entry size; 0 means
     * unbounded (the pre-existing behavior). When a store pushes the
     * total over the bound, oldest entries (by modification time) are
     * deleted first until the total fits again -- a disk-level
     * approximation of the in-memory LRU eviction, biased towards
     * keeping recently (re)written results. The entry just stored is
     * never trimmed, so a single oversized result still persists.
     */
    explicit DiskResultCache(std::string dir,
                             std::uint64_t max_bytes = 0);

    const std::string &dir() const { return dir_; }

    /** Byte bound applied after each store; 0 = unbounded. */
    std::uint64_t maxBytes() const { return maxBytes_; }

    /**
     * Read one entry; false on absent/damaged/foreign files (a
     * damaged entry is a cache miss, never an error). Thread-safe.
     */
    bool load(const std::string &fingerprint,
              service::CachedResult &out) const;

    /**
     * Write one entry atomically. Failures (disk full, permissions)
     * are swallowed: persistence is an optimization, and the value
     * is already in memory. Thread-safe; concurrent stores of the
     * same fingerprint write identical bytes, so the last rename
     * winning is harmless.
     */
    void store(const std::string &fingerprint,
               const service::CachedResult &value) const;

    /** Completed entries on disk right now (for tests/status). */
    std::size_t entryCount() const;

    /** Total bytes of completed entries (for tests/status). */
    std::uint64_t totalBytes() const;

  private:
    std::string entryPath(const std::string &fingerprint) const;

    /**
     * Delete oldest-modified entries until the directory total fits
     * under maxBytes_, sparing `keep` (the freshly stored path).
     * Failures are swallowed like store()'s: the bound is advisory
     * against unbounded growth, not a hard invariant.
     */
    void trimToBudget(const std::string &keep) const;

    std::string dir_;
    std::uint64_t maxBytes_ = 0;
};

} // namespace fleet
} // namespace shotgun

#endif // SHOTGUN_FLEET_DISK_CACHE_HH
