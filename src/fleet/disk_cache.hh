/**
 * @file
 * Persistent result cache: one JSON file per config fingerprint in a
 * flat directory, holding the canonical encoding of a
 * service::CachedResult (the derived result plus, for windowed
 * points, the raw stitchable counters). Plugged into an
 * LruMemoCache as its write-through backend (memo.hh setBackend), it
 * makes a daemon's fingerprint cache survive restarts: the in-memory
 * LRU keeps the hot set, the directory keeps everything, and a miss
 * after a restart is answered from disk instead of re-simulating.
 *
 * Writes are atomic (tmp file + rename in the same directory), so a
 * crash mid-store leaves at worst a stray .tmp file, never a
 * truncated entry; a reader that finds a damaged or foreign file
 * treats it as a miss. Results are pure functions of their
 * fingerprint, so entries never need invalidation -- the same
 * caveat as configFingerprint(): re-recording a different workload
 * over an existing trace path aliases entries. Don't do that.
 *
 * Shared by the coordinator (fleet-wide cache) and by
 * shotgun-serve --cache-dir (per-worker cache); the service layer
 * itself stays storage-ignorant and only sees the memo-cache
 * backend callbacks.
 */

#ifndef SHOTGUN_FLEET_DISK_CACHE_HH
#define SHOTGUN_FLEET_DISK_CACHE_HH

#include <cstdint>
#include <string>

#include "service/server.hh"

namespace shotgun
{
namespace fleet
{

class DiskResultCache
{
  public:
    /**
     * Create/open the cache directory (parents included). Throws
     * std::runtime_error when the directory cannot be created or is
     * not writable -- a daemon should refuse to start with a broken
     * cache rather than silently run without persistence.
     */
    explicit DiskResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Read one entry; false on absent/damaged/foreign files (a
     * damaged entry is a cache miss, never an error). Thread-safe.
     */
    bool load(const std::string &fingerprint,
              service::CachedResult &out) const;

    /**
     * Write one entry atomically. Failures (disk full, permissions)
     * are swallowed: persistence is an optimization, and the value
     * is already in memory. Thread-safe; concurrent stores of the
     * same fingerprint write identical bytes, so the last rename
     * winning is harmless.
     */
    void store(const std::string &fingerprint,
               const service::CachedResult &value) const;

    /** Completed entries on disk right now (for tests/status). */
    std::size_t entryCount() const;

  private:
    std::string entryPath(const std::string &fingerprint) const;

    std::string dir_;
};

} // namespace fleet
} // namespace shotgun

#endif // SHOTGUN_FLEET_DISK_CACHE_HH
