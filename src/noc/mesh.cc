#include "noc/mesh.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace shotgun
{

MeshModel::MeshModel(const MeshParams &params)
    : params_(params)
{
    fatal_if(params_.dim == 0, "mesh dimension must be positive");
    fatal_if(params_.serviceCapacity <= 0.0,
             "mesh service capacity must be positive");
    // Mean one-way Manhattan distance between uniformly random tiles
    // of a dim x dim mesh is 2*(dim^2-1)/(3*dim); for 4x4 that is
    // 2.5 hops.
    const double dim = static_cast<double>(params_.dim);
    const double mean_hops = 2.0 * (dim * dim - 1.0) / (3.0 * dim);
    baseLlc_ = static_cast<Cycle>(
        std::lround(2.0 * mean_hops * params_.hopCycles) +
        params_.llcAccessCycles);
}

void
MeshModel::advance(Cycle now)
{
    const Cycle window = now / params_.rateWindow;
    if (window == curWindow_)
        return;
    if (window == curWindow_ + 1) {
        prevRate_ = static_cast<double>(curCount_) /
                    static_cast<double>(params_.rateWindow);
    } else {
        // Idle gap: the measured rate decays to zero.
        prevRate_ = 0.0;
    }
    curWindow_ = window;
    curCount_ = 0;
}

void
MeshModel::noteRequest(Cycle now)
{
    advance(now);
    ++curCount_;
    ++requests_;
}

double
MeshModel::ownRate(Cycle now)
{
    advance(now);
    return prevRate_;
}

double
MeshModel::utilization(Cycle now)
{
    const double load = params_.backgroundLoad +
                        static_cast<double>(params_.numCores) *
                            ownRate(now);
    return std::min(load / params_.serviceCapacity, 0.98);
}

Cycle
MeshModel::queueCycles(Cycle now)
{
    const double rho = utilization(now);
    const double delay = params_.queueFactor * rho / (1.0 - rho);
    const Cycle clamped = static_cast<Cycle>(std::min<double>(
        delay, static_cast<double>(params_.maxQueueCycles)));
    queueDelay_.sample(static_cast<double>(clamped));
    return clamped;
}

Cycle
MeshModel::llcLatency(Cycle now)
{
    return baseLlc_ + queueCycles(now);
}

Cycle
MeshModel::memoryLatency(Cycle now)
{
    return baseLlc_ + params_.memoryCycles + queueCycles(now);
}

} // namespace shotgun
