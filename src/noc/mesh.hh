/**
 * @file
 * Analytic model of the 4x4 mesh + NUCA LLC of the paper's 16-core
 * CMP (Table 3: 4x4 2D mesh at 3 cycles/hop, 512KB/core shared NUCA
 * LLC at 5 cycles, 45ns memory).
 *
 * We simulate one core in detail; the other 15 cores' traffic is
 * modelled analytically. Because all cores run the same workload and
 * prefetch scheme (the paper's homogeneous-consolidation setup), the
 * peers' offered load mirrors the simulated core's own request rate:
 * total load = 16 x own rate + a fixed data-traffic term. Latency is
 * base (hops + LLC access) plus an M/M/1-style queueing term in the
 * utilization, which is what couples over-prefetching to L1-D fill
 * latency (Fig 11).
 */

#ifndef SHOTGUN_NOC_MESH_HH
#define SHOTGUN_NOC_MESH_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace shotgun
{

struct MeshParams
{
    unsigned dim = 4;           ///< Mesh dimension (4x4).
    unsigned hopCycles = 3;     ///< Per-hop latency (Table 3).
    unsigned llcAccessCycles = 5; ///< NUCA slice access (Table 3).
    unsigned memoryCycles = 90; ///< 45ns at 2GHz, beyond LLC latency.

    /** Requests/cycle the LLC banks + NoC can absorb in aggregate. */
    double serviceCapacity = 6.5;

    /** Number of cores whose traffic mirrors the simulated core. */
    unsigned numCores = 16;

    /** Fixed additional load (peer data traffic), requests/cycle. */
    double backgroundLoad = 3.0;

    /** Queue-delay scale factor (cycles at 50% utilization). */
    double queueFactor = 16.0;

    /** Upper bound on the queueing term, cycles. */
    unsigned maxQueueCycles = 120;

    /** Width of the rate-measurement window, cycles (power of two). */
    Cycle rateWindow = 2048;
};

/**
 * Tracks the simulated core's LLC request rate over a sliding window
 * and converts utilization into per-request latency.
 */
class MeshModel
{
  public:
    explicit MeshModel(const MeshParams &params = MeshParams{});

    /** Account one LLC request from the simulated core. */
    void noteRequest(Cycle now);

    /** Round-trip latency L1 -> LLC -> L1 for an LLC hit. */
    Cycle llcLatency(Cycle now);

    /** Round-trip latency for an LLC miss serviced by memory. */
    Cycle memoryLatency(Cycle now);

    /** Current modelled utilization in [0, 1). */
    double utilization(Cycle now);

    /** Own request rate over the last full window (requests/cycle). */
    double ownRate(Cycle now);

    /** Base (uncontended) LLC round trip, cycles. */
    Cycle baseLlcLatency() const { return baseLlc_; }

    const MeshParams &params() const { return params_; }

    std::uint64_t requests() const { return requests_.value(); }
    double avgQueueDelay() const { return queueDelay_.mean(); }

    void
    resetStats()
    {
        requests_.reset();
        queueDelay_.reset();
    }

  private:
    void advance(Cycle now);
    Cycle queueCycles(Cycle now);

    MeshParams params_;
    Cycle baseLlc_;

    Cycle curWindow_ = 0;
    std::uint64_t curCount_ = 0;
    double prevRate_ = 0.0;

    Counter requests_;
    Average queueDelay_;
};

} // namespace shotgun

#endif // SHOTGUN_NOC_MESH_HH
