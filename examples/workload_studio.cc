/**
 * @file
 * Workload studio: build a *custom* synthetic server workload from
 * command-line knobs -- or load a recorded trace -- and characterize
 * it the way Sec 3 of the paper characterizes its commercial
 * workloads: code footprint, branch mix, BTB/L1-I pressure, region
 * spatial locality, and hot-branch coverage. Then runs the main
 * delivery schemes on the workload through the experiment runner
 * (concurrently, --jobs) for an instant paper-style comparison.
 * Useful for generating new calibration points beyond the six
 * shipped presets.
 *
 * Usage: workload_studio [numFuncs] [zipfAlpha] [instructions] [--jobs N]
 *        workload_studio trace:<path>[:name] [instructions] [--jobs N]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <unordered_map>
#include <vector>

#include "btb/conventional_btb.hh"
#include "cache/cache.hh"
#include "common/stats.hh"
#include "obs/uarch.hh"
#include "runner/experiment.hh"
#include "sim/simulator.hh"
#include "trace/program.hh"
#include "trace/trace_io.hh"

using namespace shotgun;

namespace
{

/** Strict positive count for --jobs; exits with usage on bad input. */
unsigned
parseJobsArg(const char *text)
{
    char *end = nullptr;
    const unsigned long value =
        text ? std::strtoul(text, &end, 10) : 0;
    if (text == nullptr || *text == '\0' || *end != '\0' ||
        value == 0 ||
        value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr,
                     "--jobs: expected a positive count, got '%s'\n",
                     text ? text : "");
        std::exit(2);
    }
    return static_cast<unsigned>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    ProgramParams params;
    params.name = "studio";
    params.numFuncs = 6000;
    params.zipfAlpha = 0.95;
    std::string trace_spec; // trace:<path>[:name] replaces the knobs
    std::uint64_t instructions = 3000000;
    unsigned jobs = 0; // all cores
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = parseJobsArg(i + 1 < argc ? argv[++i] : nullptr);
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr,
                         "unknown option '%s'\nusage: workload_studio "
                         "[numFuncs|trace:<path>[:name]] [zipfAlpha] "
                         "[instructions] [--jobs N]\n",
                         argv[i]);
            return 2;
        } else if (positional == 0 &&
                   isTraceWorkloadSpec(argv[i])) {
            trace_spec = argv[i];
            positional = 2; // only [instructions] may follow
        } else if (positional == 0) {
            params.numFuncs =
                static_cast<std::uint32_t>(std::atoi(argv[i]));
            ++positional;
        } else if (positional == 1) {
            params.zipfAlpha = std::atof(argv[i]);
            ++positional;
        } else if (positional == 2) {
            instructions = std::strtoull(argv[i], nullptr, 10);
            ++positional;
        }
    }
    params.numOsFuncs = params.numFuncs / 5;
    params.seed = 0x57d10;

    WorkloadPreset preset;
    if (trace_spec.empty()) {
        preset.name = params.name;
        preset.program = params;
    } else {
        preset = presetByName(trace_spec);
        std::printf("workload '%s' loaded from %s\n",
                    preset.name.c_str(), preset.tracePath.c_str());
    }

    const Program &program = programFor(preset);
    std::printf("program: %u functions (%u OS), %.2f MB code, %llu "
                "static branch sites\n",
                program.numFunctions(),
                static_cast<unsigned>(preset.program.numOsFuncs),
                program.codeBytes() / 1024.0 / 1024.0,
                static_cast<unsigned long long>(
                    program.numStaticBranches()));

    const auto gen = openTraceSource(preset, program, 1);
    ConventionalBTB btb(2048);
    Cache l1i(CacheParams{"l1i", 32, 2});
    Histogram region_len(33);
    std::unordered_map<Addr, std::uint64_t> branch_counts;

    BBRecord rec;
    std::uint64_t instrs = 0;
    std::uint64_t blocks = 0, branches = 0, conditionals = 0;
    std::uint64_t region_blocks = 0;
    Addr region_anchor = 0;
    bool region_open = false;
    while (instrs < instructions) {
        if (!gen->next(rec)) {
            std::fprintf(stderr,
                         "error: trace ran dry after %llu of %llu "
                         "instructions; record a longer trace\n",
                         static_cast<unsigned long long>(instrs),
                         static_cast<unsigned long long>(
                             instructions));
            return 1;
        }
        instrs += rec.numInstrs;
        ++blocks;
        branches += isBranch(rec.type);
        conditionals += rec.type == BranchType::Conditional;
        if (!btb.lookup(rec.startAddr)) {
            BTBEntry e;
            e.bbStart = rec.startAddr;
            e.target = rec.target;
            e.numInstrs = rec.numInstrs;
            e.type = rec.type;
            btb.insert(e);
        }
        for (Addr b = rec.firstBlock(); b <= rec.lastBlock(); ++b) {
            if (!l1i.access(b))
                l1i.fill(b, false);
            if (region_open) {
                const auto d = static_cast<std::int64_t>(b) -
                               static_cast<std::int64_t>(region_anchor);
                region_blocks = std::max<std::uint64_t>(
                    region_blocks, static_cast<std::uint64_t>(
                                       d < 0 ? 0 : d));
            }
        }
        if (isBranch(rec.type))
            ++branch_counts[rec.branchPC()];
        if (endsRegion(rec.type)) {
            if (region_open)
                region_len.sample(region_blocks);
            region_open = true;
            region_anchor = blockNumber(rec.target);
            region_blocks = 0;
        }
    }

    std::printf("dynamic: %.1f branches/KI (%.0f%% conditional), "
                "%llu basic blocks\n",
                1000.0 * branches / instrs,
                branches == 0 ? 0.0
                              : 100.0 * conditionals / branches,
                static_cast<unsigned long long>(blocks));
    std::printf("pressure: BTB MPKI %.2f | L1-I MPKI %.2f\n",
                1000.0 * btb.misses() / instrs,
                1000.0 * l1i.misses() / instrs);
    std::printf("regions: median forward extent %zu blocks, p90 %zu "
                "blocks\n",
                region_len.percentileBucket(0.5),
                region_len.percentileBucket(0.9));

    // Hot-branch coverage (Fig 4 style).
    std::vector<std::uint64_t> counts;
    counts.reserve(branch_counts.size());
    std::uint64_t total = 0;
    for (const auto &[pc, count] : branch_counts) {
        counts.push_back(count);
        total += count;
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(counts.size(),
                                                      2048); ++i) {
        running += counts[i];
    }
    std::printf("hot set: top-2K static branches cover %.1f%% of "
                "dynamic branches (%zu sites seen)\n",
                100.0 * running / total, branch_counts.size());

    // Paper-style scheme comparison on the workload, fanned out over
    // the experiment runner.
    runner::ExperimentSet set;
    const std::size_t base_idx =
        set.addBaseline(preset, instructions / 2, instructions);
    std::vector<std::pair<std::string, std::size_t>> points;
    for (SchemeType type : {SchemeType::Boomerang,
                            SchemeType::Confluence,
                            SchemeType::Shotgun}) {
        SimConfig config = SimConfig::make(preset, type);
        config.warmupInstructions = instructions / 2;
        config.measureInstructions = instructions;
        // Observer-only probes: the comparison numbers are bitwise
        // identical with or without them, and they feed the stall
        // attribution table below.
        config.core.uarchProbes = true;
        points.emplace_back(
            schemeTypeName(type),
            set.add(preset, schemeTypeName(type), std::move(config)));
    }

    runner::RunnerOptions runner_opts;
    runner_opts.jobs = jobs;
    const auto results =
        runner::ExperimentRunner(runner_opts).run(set);
    const SimResult &base = results[base_idx];

    std::printf("\ndelivery schemes on '%s' (baseline IPC %.3f):\n",
                preset.name.c_str(), base.ipc);
    for (const auto &[name, index] : points) {
        const SimResult &r = results[index];
        std::printf("  %-10s speedup %.3fx | FE coverage %5.1f%% | "
                    "L1-I MPKI %.1f\n",
                    name.c_str(), speedup(r, base),
                    100.0 * stallCoverage(r, base), r.l1iMPKI);
    }

    // Cycle-exact attribution from the probes: every measured cycle
    // is active or charged to exactly one stall cause, so each row
    // sums to 100% (the conservation invariant).
    std::printf("\nstall attribution (%% of measured cycles):\n");
    std::printf("  %-10s %7s %7s %7s %7s %7s %7s %7s\n", "scheme",
                "active", "icache", "btb", "redir", "ftq", "backend",
                "pf-wait");
    for (const auto &[name, index] : points) {
        const SimResult &r = results[index];
        const obs::UarchBreakdown &u = r.uarch;
        auto pct = [&r](std::uint64_t cycles) {
            return r.cycles == 0 ? 0.0
                                 : 100.0 * static_cast<double>(cycles) /
                                       static_cast<double>(r.cycles);
        };
        std::printf("  %-10s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% "
                    "%6.1f%% %6.1f%%%s\n",
                    name.c_str(), pct(u.activeCycles),
                    pct(u.stallICacheMiss), pct(u.stallBTBMiss),
                    pct(u.stallRedirect), pct(u.stallFTQEmpty),
                    pct(u.stallBackendPressure),
                    pct(u.stallPrefetchInFlight),
                    u.conserves(r.cycles) ? "" : "  [not conserved!]");
    }
    return 0;
}
