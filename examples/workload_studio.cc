/**
 * @file
 * Workload studio: build a *custom* synthetic server workload from
 * command-line knobs and characterize it the way Sec 3 of the paper
 * characterizes its commercial workloads -- code footprint, branch
 * mix, BTB/L1-I pressure, region spatial locality, and hot-branch
 * coverage. Useful for generating new calibration points beyond the
 * six shipped presets.
 *
 * Usage: workload_studio [numFuncs] [zipfAlpha] [instructions]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "btb/conventional_btb.hh"
#include "cache/cache.hh"
#include "common/stats.hh"
#include "trace/generator.hh"
#include "trace/program.hh"

using namespace shotgun;

int
main(int argc, char **argv)
{
    ProgramParams params;
    params.name = "studio";
    params.numFuncs =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6000;
    params.zipfAlpha = argc > 2 ? std::atof(argv[2]) : 0.95;
    const std::uint64_t instructions =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3000000;
    params.numOsFuncs = params.numFuncs / 5;
    params.seed = 0x57d10;

    Program program(params);
    std::printf("program: %u functions (%u OS), %.2f MB code, %llu "
                "static branch sites\n",
                program.numFunctions(),
                static_cast<unsigned>(params.numOsFuncs),
                program.codeBytes() / 1024.0 / 1024.0,
                static_cast<unsigned long long>(
                    program.numStaticBranches()));

    TraceGenerator gen(program, 1);
    ConventionalBTB btb(2048);
    Cache l1i(CacheParams{"l1i", 32, 2});
    Histogram region_len(33);
    std::unordered_map<Addr, std::uint64_t> branch_counts;

    BBRecord rec;
    std::uint64_t instrs = 0;
    std::uint64_t region_blocks = 0;
    Addr region_anchor = 0;
    bool region_open = false;
    while (instrs < instructions) {
        gen.next(rec);
        instrs += rec.numInstrs;
        if (!btb.lookup(rec.startAddr)) {
            BTBEntry e;
            e.bbStart = rec.startAddr;
            e.target = rec.target;
            e.numInstrs = rec.numInstrs;
            e.type = rec.type;
            btb.insert(e);
        }
        for (Addr b = rec.firstBlock(); b <= rec.lastBlock(); ++b) {
            if (!l1i.access(b))
                l1i.fill(b, false);
            if (region_open) {
                const auto d = static_cast<std::int64_t>(b) -
                               static_cast<std::int64_t>(region_anchor);
                region_blocks = std::max<std::uint64_t>(
                    region_blocks, static_cast<std::uint64_t>(
                                       d < 0 ? 0 : d));
            }
        }
        if (isBranch(rec.type))
            ++branch_counts[rec.branchPC()];
        if (endsRegion(rec.type)) {
            if (region_open)
                region_len.sample(region_blocks);
            region_open = true;
            region_anchor = blockNumber(rec.target);
            region_blocks = 0;
        }
    }

    const auto &stats = gen.stats();
    std::printf("dynamic: %.1f branches/KI (%.0f%% conditional), "
                "%llu requests\n",
                1000.0 * stats.branches / stats.instructions,
                100.0 * stats.conditionals / stats.branches,
                static_cast<unsigned long long>(stats.requests));
    std::printf("pressure: BTB MPKI %.2f | L1-I MPKI %.2f\n",
                1000.0 * btb.misses() / instrs,
                1000.0 * l1i.misses() / instrs);
    std::printf("regions: median forward extent %zu blocks, p90 %zu "
                "blocks\n",
                region_len.percentileBucket(0.5),
                region_len.percentileBucket(0.9));

    // Hot-branch coverage (Fig 4 style).
    std::vector<std::uint64_t> counts;
    counts.reserve(branch_counts.size());
    std::uint64_t total = 0;
    for (const auto &[pc, count] : branch_counts) {
        counts.push_back(count);
        total += count;
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(counts.size(),
                                                      2048); ++i) {
        running += counts[i];
    }
    std::printf("hot set: top-2K static branches cover %.1f%% of "
                "dynamic branches (%zu sites seen)\n",
                100.0 * running / total, branch_counts.size());
    return 0;
}
