/**
 * @file
 * BTB-organization explorer: a design-space study over Shotgun's BTB
 * partitioning, the kind of experiment an architect adopting the
 * library would run first. For a fixed total storage budget, sweep
 * how capacity is split between the U-BTB (global control flow +
 * footprints), the C-BTB (local control flow) and the RIB, and
 * report speedup -- reproducing the paper's design argument that the
 * bulk of the budget belongs to unconditional branches.
 *
 * Usage: btb_explorer [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "sim/simulator.hh"

#include <iostream>

using namespace shotgun;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "oracle";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000000;
    const std::uint64_t warmup = instructions / 2;

    const WorkloadPreset preset = presetByName(workload);
    const SimResult base = baselineFor(preset, warmup, instructions);

    struct Split
    {
        const char *label;
        std::size_t ubtb, cbtb, rib;
    };
    // Roughly equal total storage; entry sizes differ (106/70/45
    // bits), so the splits trade many small entries for fewer big
    // ones. "paper" is the Sec 5.2 configuration.
    const Split splits[] = {
        {"cond-heavy (U 384, C 1536, R 512)", 384, 1536, 512},
        {"balanced  (U 1024, C 640, R 512)", 1024, 640, 512},
        {"paper     (U 1536, C 128, R 512)", 1536, 128, 512},
        {"uncond-max (U 1792, C 64, R 128)", 1792, 64, 128},
    };

    TextTable table("Shotgun BTB partitioning on " + preset.name);
    table.row().cell("Split").cell("Storage KB").cell("Speedup")
        .cell("FE stall coverage");

    for (const Split &split : splits) {
        SimConfig config = SimConfig::make(preset, SchemeType::Shotgun);
        config.scheme.shotgun.ubtbEntries = split.ubtb;
        config.scheme.shotgun.cbtbEntries = split.cbtb;
        config.scheme.shotgun.ribEntries = split.rib;
        config.warmupInstructions = warmup;
        config.measureInstructions = instructions;
        const SimResult result = runSimulation(config);
        table.row().cell(split.label)
            .cell(result.schemeStorageBits / 8.0 / 1024.0, 2)
            .cell(speedup(result, base), 3)
            .percentCell(stallCoverage(result, base));
    }
    table.print(std::cout);
    std::printf("\nExpectation (Sec 4 of the paper): devoting the bulk "
                "of the budget to unconditional\nbranches (and their "
                "footprints) wins once the branch working set is "
                "large.\n");
    return 0;
}
