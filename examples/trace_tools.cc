/**
 * @file
 * Trace recording and replay: capture a workload's dynamic basic
 * block stream into a binary trace file, then feed the file back
 * through the simulator and verify the run is bit-identical to live
 * generation. Downstream users can convert traces from other
 * simulators into this format (see trace/trace_io.hh) and drive the
 * whole harness from them; the full-featured CLI is `shotgun-trace`.
 *
 * Usage: trace_tools [workload] [basic_blocks] [path]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "trace/trace_io.hh"

using namespace shotgun;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "apache";
    const std::uint64_t num_bbs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/shotgun_example_trace.bin";

    const WorkloadPreset preset = presetByName(workload);
    const Program &program = programFor(preset);

    // Record. The source may itself be a recorded trace when the
    // workload is a trace:<path> spec -- that just trims it, and the
    // trimmed file must keep the original recording seed so replays
    // still reproduce the run it was captured from.
    const std::uint64_t seed =
        preset.tracePath.empty()
            ? 1
            : readTraceInfo(preset.tracePath).traceSeed;
    const auto recorder = openTraceSource(preset, program, seed);
    const std::uint64_t written =
        recordTrace(*recorder, preset, seed, path, num_bbs);
    const TraceInfo info = readTraceInfo(path);
    std::printf("recorded %llu basic blocks (%llu instructions) to %s\n",
                static_cast<unsigned long long>(written),
                static_cast<unsigned long long>(info.instructions),
                path.c_str());

    // Replay through the full core with Shotgun, against live
    // generation with the same seed.
    auto run = [&](TraceSource &source) {
        CoreParams core_params;
        core_params.loadFrac = preset.loadFrac;
        core_params.l1dMissRate = preset.l1dMissRate;
        core_params.llcDataMissFrac = preset.llcDataMissFrac;
        HierarchyParams hier;
        hier.mesh.backgroundLoad = preset.backgroundLoad;
        SchemeConfig scheme;
        scheme.type = SchemeType::Shotgun;
        Core core(program, source, core_params, hier, scheme);
        core.run(info.instructions - 64);
        return core;
    };

    const auto live = openTraceSource(preset, program, seed);
    TraceFileSource replay(path);

    Core live_core = run(*live);
    Core replay_core = run(replay);

    std::printf("live   : %llu cycles, IPC %.4f\n",
                static_cast<unsigned long long>(live_core.cycles()),
                live_core.ipc());
    std::printf("replay : %llu cycles, IPC %.4f\n",
                static_cast<unsigned long long>(replay_core.cycles()),
                replay_core.ipc());
    if (live_core.cycles() == replay_core.cycles()) {
        std::printf("OK: file replay is bit-identical to live "
                    "generation\n");
        return 0;
    }
    std::printf("MISMATCH: replay diverged from live generation\n");
    return 1;
}
