/**
 * @file
 * Quickstart: simulate one server workload with and without Shotgun
 * and print the headline numbers. This is the smallest end-to-end
 * use of the public API:
 *
 *   1. pick a workload preset (synthetic stand-ins for the paper's
 *      commercial server workloads),
 *   2. build a SimConfig for a control-flow delivery scheme,
 *   3. runSimulation() and compare against the no-prefetch baseline.
 *
 * Usage: quickstart [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"

using namespace shotgun;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "db2";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3000000;
    const std::uint64_t warmup = instructions / 2;

    const WorkloadPreset preset = presetByName(workload);
    std::printf("workload: %s (synthetic; %.1f MB code footprint)\n",
                preset.name.c_str(),
                programFor(preset).codeBytes() / 1024.0 / 1024.0);

    const SimResult base = baselineFor(preset, warmup, instructions);
    std::printf("\nno-prefetch baseline:\n");
    std::printf("  IPC %.3f | BTB MPKI %.1f | L1-I MPKI %.1f | "
                "front-end stalls/KI %.0f\n",
                base.ipc, base.btbMPKI, base.l1iMPKI,
                1000.0 * base.frontEndStallCycles / base.instructions);

    SimConfig config = SimConfig::make(preset, SchemeType::Shotgun);
    config.warmupInstructions = warmup;
    config.measureInstructions = instructions;
    const SimResult shot = runSimulation(config);

    std::printf("\nshotgun (U-BTB 1.5K + C-BTB 128 + RIB 512, 8-bit "
                "footprints; %.2f KB):\n",
                shot.schemeStorageBits / 8.0 / 1024.0);
    std::printf("  IPC %.3f | L1-I MPKI %.1f | prefetch accuracy "
                "%.0f%%\n",
                shot.ipc, shot.l1iMPKI, 100.0 * shot.prefetchAccuracy);
    std::printf("\nspeedup over baseline:        %.2fx\n",
                speedup(shot, base));
    std::printf("front-end stalls covered:     %.1f%%\n",
                100.0 * stallCoverage(shot, base));
    return 0;
}
