/**
 * @file
 * Scheme shootout: run every control-flow delivery mechanism in the
 * library (baseline, FDIP, Boomerang, Confluence, RDIP, Shotgun,
 * ideal) on one workload and print a side-by-side comparison --
 * speedup, stall coverage, L1-I pressure, prefetch accuracy and
 * metadata storage. The quickest way to see the paper's entire
 * landscape on a single workload. All seven simulations are declared
 * as one grid and executed concurrently by the experiment runner.
 *
 * Usage: scheme_shootout [workload] [instructions] [--jobs N]
 *        (workload may be a preset name or trace:<path>[:name])
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>

#include "common/table.hh"
#include "runner/experiment.hh"
#include "sim/simulator.hh"

using namespace shotgun;

namespace
{

/** Strict positive count for --jobs; exits with usage on bad input. */
unsigned
parseJobsArg(const char *text)
{
    char *end = nullptr;
    const unsigned long value =
        text ? std::strtoul(text, &end, 10) : 0;
    if (text == nullptr || *text == '\0' || *end != '\0' ||
        value == 0 ||
        value > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr,
                     "--jobs: expected a positive count, got '%s'\n",
                     text ? text : "");
        std::exit(2);
    }
    return static_cast<unsigned>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "oracle";
    std::uint64_t instructions = 3000000;
    unsigned jobs = 0; // all cores
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = parseJobsArg(i + 1 < argc ? argv[++i] : nullptr);
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr,
                         "unknown option '%s'\nusage: scheme_shootout "
                         "[workload] [instructions] [--jobs N]\n",
                         argv[i]);
            return 2;
        } else if (positional == 0) {
            workload = argv[i];
            ++positional;
        } else if (positional == 1) {
            instructions = std::strtoull(argv[i], nullptr, 10);
            ++positional;
        }
    }
    const std::uint64_t warmup = instructions / 2;

    const WorkloadPreset preset = presetByName(workload);

    const SchemeType types[] = {SchemeType::FDIP, SchemeType::Boomerang,
                                SchemeType::RDIP,
                                SchemeType::Confluence,
                                SchemeType::Shotgun, SchemeType::Ideal};

    runner::ExperimentSet set;
    const std::size_t base_idx =
        set.addBaseline(preset, warmup, instructions);
    std::vector<std::size_t> points;
    for (SchemeType type : types) {
        SimConfig config = SimConfig::make(preset, type);
        config.warmupInstructions = warmup;
        config.measureInstructions = instructions;
        points.push_back(
            set.add(preset, schemeTypeName(type), std::move(config)));
    }

    runner::RunnerOptions runner_opts;
    runner_opts.jobs = jobs;
    runner_opts.progress = &std::cerr;
    const auto results =
        runner::ExperimentRunner(runner_opts).run(set);
    const SimResult &base = results[base_idx];

    TextTable table("control-flow delivery on " + preset.name);
    table.row().cell("Scheme").cell("Speedup").cell("FE coverage")
        .cell("L1-I MPKI").cell("BTB MPKI").cell("PF accuracy")
        .cell("Storage KB");

    table.row().cell("baseline").cell(1.0, 3).percentCell(0.0)
        .cell(base.l1iMPKI, 1).cell(base.btbMPKI, 1).cell("-")
        .cell(base.schemeStorageBits / 8.0 / 1024.0, 1);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const SimResult &r = results[points[i]];
        table.row().cell(schemeTypeName(types[i]))
            .cell(speedup(r, base), 3)
            .percentCell(stallCoverage(r, base))
            .cell(r.l1iMPKI, 1).cell(r.btbMPKI, 1)
            .percentCell(r.prefetchAccuracy)
            .cell(r.schemeStorageBits / 8.0 / 1024.0, 1);
    }
    table.print(std::cout);
    std::cout << "\nNote: 'Storage KB' counts control-flow metadata "
                 "(BTBs + history tables);\nConfluence's history is "
                 "LLC-virtualized in the paper but still displaces "
                 "LLC capacity.\n";
    return 0;
}
