/**
 * @file
 * Scheme shootout: run every control-flow delivery mechanism in the
 * library (baseline, FDIP, Boomerang, Confluence, RDIP, Shotgun,
 * ideal) on one workload and print a side-by-side comparison --
 * speedup, stall coverage, L1-I pressure, prefetch accuracy and
 * metadata storage. The quickest way to see the paper's entire
 * landscape on a single workload.
 *
 * Usage: scheme_shootout [workload] [instructions]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/simulator.hh"

using namespace shotgun;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "oracle";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3000000;
    const std::uint64_t warmup = instructions / 2;

    const WorkloadPreset preset = presetByName(workload);
    const SimResult base = baselineFor(preset, warmup, instructions);

    TextTable table("control-flow delivery on " + preset.name);
    table.row().cell("Scheme").cell("Speedup").cell("FE coverage")
        .cell("L1-I MPKI").cell("BTB MPKI").cell("PF accuracy")
        .cell("Storage KB");

    table.row().cell("baseline").cell(1.0, 3).percentCell(0.0)
        .cell(base.l1iMPKI, 1).cell(base.btbMPKI, 1).cell("-")
        .cell(base.schemeStorageBits / 8.0 / 1024.0, 1);

    for (SchemeType type :
         {SchemeType::FDIP, SchemeType::Boomerang, SchemeType::RDIP,
          SchemeType::Confluence, SchemeType::Shotgun,
          SchemeType::Ideal}) {
        SimConfig config = SimConfig::make(preset, type);
        config.warmupInstructions = warmup;
        config.measureInstructions = instructions;
        const SimResult r = runSimulation(config);
        table.row().cell(schemeTypeName(type))
            .cell(speedup(r, base), 3)
            .percentCell(stallCoverage(r, base))
            .cell(r.l1iMPKI, 1).cell(r.btbMPKI, 1)
            .percentCell(r.prefetchAccuracy)
            .cell(r.schemeStorageBits / 8.0 / 1024.0, 1);
    }
    table.print(std::cout);
    std::cout << "\nNote: 'Storage KB' counts control-flow metadata "
                 "(BTBs + history tables);\nConfluence's history is "
                 "LLC-virtualized in the paper but still displaces "
                 "LLC capacity.\n";
    return 0;
}
