"""The four shotgun-lint checks.

Each check is a function over the loaded Analysis returning a list of
Finding records. Findings anchor to the line that must change (the
member declaration, the offending call) so `lint:allow` suppressions
sit next to what they justify.

Check registry (names are what `lint:allow(<name>)` takes):

  clone-completeness            every non-static data member of a
                                class with a user-written copy/clone
                                constructor must be referenced by it
  determinism-hazards           unordered-container iteration,
                                pointer-keyed ordered containers with
                                the default comparator, wall-clock /
                                libc-rand reads in sim-reachable code,
                                uninitialized scalar members in
                                checkpointable classes
  codec-coverage                every member of the wire structs must
                                be referenced by its canonical
                                encoder, decoder and fingerprint
  protocol-optional-discipline  optional protocol members must be
                                decoded via find(), never .at()
"""

from collections import namedtuple

from cpp_model import _angle_open, _skip_angles, _skip_balanced

Finding = namedtuple("Finding", ["file", "line", "check", "message"])

CHECK_NAMES = (
    "clone-completeness",
    "determinism-hazards",
    "codec-coverage",
    "protocol-optional-discipline",
)

# ------------------------------------------------------------------ helpers


def _in_scope(relpath, prefixes):
    return any(relpath.startswith(p) for p in prefixes)


def _type_tokens(type_text):
    return [t for t in type_text.replace("::", " :: ").split()
            if t not in ("const", "mutable", "volatile", "struct",
                         "class", "enum", "typename")]


def _is_scalar_type(type_text, scalar_types):
    # `*`/`&` inside template arguments (std::map<int, T *>) say
    # nothing about the member itself; only top-level ones do.
    lt = type_text.find("<")
    gt = type_text.rfind(">")
    if lt != -1 and gt > lt:
        type_text = type_text[:lt] + " " + type_text[gt + 1:]
    toks = _type_tokens(type_text)
    if not toks:
        return False
    if "&" in toks:
        return False  # references must be bound, the compiler enforces
    if "*" in toks:
        return True  # an uninitialized pointer is the classic hazard
    last = toks[-1]
    return last in scalar_types


# ------------------------------------------------------- clone-completeness


def check_clone_completeness(analysis):
    findings = []
    scope = analysis.config["clone_scope"]
    for cls in analysis.classes:
        if not _in_scope(cls.file, scope):
            continue
        copy_ctors = [c for c in analysis.ctors_of(cls)
                      if c.is_copy_like]
        if not copy_ctors:
            continue
        bodies = [c for c in copy_ctors if c.has_body]
        if not bodies:
            continue  # declared here, defined out of the scanned set
        covered = set()
        for c in bodies:
            covered |= c.idents
        where = ", ".join(sorted({"%s:%d" % (c.file, c.line)
                                  for c in bodies}))
        for m in cls.members:
            if m.name in covered:
                continue
            findings.append(Finding(
                cls.file, m.line, "clone-completeness",
                "member '%s' of %s is not referenced by its "
                "copy/clone constructor (%s); a member missing from "
                "the clone path silently diverges on checkpoint "
                "restore" % (m.name, cls.qualified_name, where)))
    return findings


# ------------------------------------------------------ determinism-hazards


def _banned_source_calls(tokens, relpath, config):
    """rand()/random_device/wall-clock reads in sim-reachable code."""
    findings = []
    banned = config["banned_sources"]
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text not in banned:
            continue
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < n else None
        # Member access `x.time(...)` is not the libc call.
        if prev is not None and prev.kind == "punct" and \
                prev.text == ".":
            continue
        # Call-shaped names need the call parenthesis; type-shaped
        # names (random_device, system_clock...) match bare.
        if banned[t.text] == "call" and not (
                nxt is not None and nxt.kind == "punct" and
                nxt.text == "("):
            continue
        findings.append(Finding(
            relpath, t.line, "determinism-hazards",
            "'%s' in sim-reachable code: results must be a pure "
            "function of the configuration; wall-clock and libc "
            "randomness belong only in src/obs/ and "
            "src/runner/progress.*" % t.text))
    return findings


def _unordered_iteration(tokens, relpath, unordered_names):
    """Range-for / .begin() iteration over unordered containers."""
    findings = []
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text == "for" and i + 1 < n and \
                tokens[i + 1].kind == "punct" and \
                tokens[i + 1].text == "(":
            end = _skip_balanced(tokens, i + 1, "(", ")")
            inner = tokens[i + 2:end - 1]
            colon = _top_level_colon(inner)
            if colon is not None:
                range_idents = {tk.text for tk in inner[colon + 1:]
                                if tk.kind == "id"}
                hit = sorted(range_idents & unordered_names)
                if hit:
                    findings.append(Finding(
                        relpath, t.line, "determinism-hazards",
                        "iteration over unordered container '%s': "
                        "traversal order is implementation-defined, "
                        "so anything it feeds (stats, output, "
                        "allocation order) loses bitwise "
                        "determinism" % hit[0]))
            i = end
            continue
        if t.kind == "id" and t.text in unordered_names and \
                i + 3 < n and tokens[i + 1].kind == "punct" and \
                tokens[i + 1].text == "." and \
                tokens[i + 2].kind == "id" and \
                tokens[i + 2].text in ("begin", "cbegin", "rbegin") and \
                tokens[i + 3].kind == "punct" and \
                tokens[i + 3].text == "(":
            findings.append(Finding(
                relpath, t.line, "determinism-hazards",
                "iterator over unordered container '%s': traversal "
                "order is implementation-defined, so anything it "
                "feeds loses bitwise determinism" % t.text))
            i += 4
            continue
        i += 1
    return findings


def _top_level_colon(tokens):
    """Index of a `:` at depth 0 (range-for separator), or None."""
    depth = 0
    for i, t in enumerate(tokens):
        if t.kind != "punct":
            continue
        if t.text in ("(", "{", "["):
            depth += 1
        elif t.text in (")", "}", "]"):
            depth -= 1
        elif t.text == "<" and _angle_open(tokens, i):
            depth += 1
        elif t.text == ">" and depth > 0:
            depth -= 1
        elif t.text == ":" and depth == 0:
            return i
    return None


def _pointer_keyed_ordered(tokens, relpath):
    """std::map/std::set keyed on raw pointers with the default
    comparator: std::less<T*> is the runtime address order."""
    findings = []
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if t.kind == "id" and \
                t.text in ("map", "set", "multimap", "multiset") and \
                i >= 1 and tokens[i - 1].kind == "punct" and \
                tokens[i - 1].text == "::" and i + 1 < n and \
                tokens[i + 1].kind == "punct" and \
                tokens[i + 1].text == "<":
            end = _skip_angles(tokens, i + 1)
            args = _split_template_args(tokens[i + 2:end - 1])
            if args:
                key = args[0]
                key_is_ptr = bool(key) and key[-1].kind == "punct" \
                    and key[-1].text == "*"
                has_cmp = (t.text in ("map", "multimap") and
                           len(args) >= 3) or \
                          (t.text in ("set", "multiset") and
                           len(args) >= 2)
                if key_is_ptr and not has_cmp:
                    findings.append(Finding(
                        relpath, t.line, "determinism-hazards",
                        "std::%s keyed on a raw pointer with the "
                        "default comparator: iteration order is the "
                        "allocation-dependent address order; key on "
                        "a stable id or supply a deterministic "
                        "comparator" % t.text))
            i = end
            continue
        i += 1
    return findings


def _split_template_args(tokens):
    args = []
    cur = []
    depth = 0
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text in ("(", "{", "["):
            end = _skip_balanced(tokens, i, t.text,
                                 {"(": ")", "{": "}",
                                  "[": "]"}[t.text])
            cur.extend(tokens[i:end])
            i = end
            continue
        if t.kind == "punct" and t.text == "<" and _angle_open(tokens, i):
            end = _skip_angles(tokens, i)
            cur.extend(tokens[i:end])
            i = end
            continue
        if t.kind == "punct" and t.text == "," and depth == 0:
            args.append(cur)
            cur = []
            i += 1
            continue
        cur.append(t)
        i += 1
    if cur:
        args.append(cur)
    return args


def _uninitialized_scalars(analysis):
    findings = []
    scope = analysis.config["clone_scope"]
    scalar_types = set(analysis.config["scalar_types"])
    for cls in analysis.classes:
        if not _in_scope(cls.file, scope):
            continue
        ctors = analysis.ctors_of(cls)
        ctor_idents = set()
        for c in ctors:
            ctor_idents |= c.idents
        for m in cls.members:
            if m.has_initializer:
                continue
            if not _is_scalar_type(m.type_text, scalar_types):
                continue
            if m.name in ctor_idents:
                continue
            findings.append(Finding(
                cls.file, m.line, "determinism-hazards",
                "scalar member '%s' of %s has no default initializer "
                "and no constructor initializes it; an indeterminate "
                "value makes checkpoint clones and reruns diverge "
                "silently" % (m.name, cls.qualified_name)))
    return findings


def check_determinism_hazards(analysis):
    findings = []
    det_scope = analysis.config["determinism_scope"]
    allowed = analysis.config["clock_allowed"]
    for relpath, (tokens, _comments) in sorted(analysis.files.items()):
        if not _in_scope(relpath, det_scope):
            continue
        if _in_scope(relpath, allowed):
            continue
        findings += _banned_source_calls(tokens, relpath,
                                         analysis.config)
        findings += _unordered_iteration(
            tokens, relpath, analysis.unordered_names_for(relpath))
        findings += _pointer_keyed_ordered(tokens, relpath)
    findings += _uninitialized_scalars(analysis)
    return findings


# ---------------------------------------------------------- codec-coverage


def check_codec_coverage(analysis):
    findings = []
    codec = analysis.config.get("codec", {})
    structs = codec.get("structs", [])
    funcs = analysis.function_bodies  # name -> FunctionBody

    # Effective identifier set: a fingerprint/encoder that delegates
    # (configFingerprint hashes encodeSimConfig's canonical dump)
    # covers everything its delegates cover.
    cache = {}

    def effective(fn_name, trail=()):
        if fn_name in cache:
            return cache[fn_name]
        body = funcs.get(fn_name)
        if body is None:
            return set()
        result = set(body.idents)
        for callee in body.idents & set(funcs):
            if callee != fn_name and callee not in trail:
                result |= effective(callee, trail + (fn_name,))
        cache[fn_name] = result
        return result

    classes_by_name = {}
    for cls in analysis.classes:
        classes_by_name.setdefault(cls.name, cls)

    for entry in structs:
        sname = entry["struct"]
        cls = classes_by_name.get(sname)
        if cls is None:
            findings.append(Finding(
                codec.get("config_file", "tools/lint/config.json"), 1,
                "codec-coverage",
                "configured struct '%s' was not found in the scanned "
                "tree; update the codec coverage map" % sname))
            continue
        excludes = entry.get("exclude", {})
        for role in ("encoder", "decoder", "fingerprint"):
            fn_name = entry.get(role)
            if fn_name is None:
                continue
            if fn_name not in funcs:
                findings.append(Finding(
                    cls.file, cls.line, "codec-coverage",
                    "%s '%s' for struct %s was not found in the "
                    "codec scan set" % (role, fn_name, sname)))
                continue
            covered = effective(fn_name)
            role_excludes = excludes.get(role, {})
            for m in cls.members:
                if m.name in role_excludes:
                    continue
                if m.name in covered:
                    continue
                findings.append(Finding(
                    cls.file, m.line, "codec-coverage",
                    "member '%s' of %s is not referenced by its %s "
                    "%s(); a field that escapes the canonical codec "
                    "or fingerprint corrupts caching and "
                    "interchange fleet-wide" % (m.name, sname, role,
                                                fn_name)))
    return findings


# ------------------------------------------- protocol-optional-discipline


def check_protocol_optional(analysis):
    findings = []
    scope = analysis.config["protocol_scope"]
    optional = set(analysis.config["optional_fields"])
    for relpath, (tokens, _comments) in sorted(analysis.files.items()):
        if not _in_scope(relpath, scope):
            continue
        n = len(tokens)
        for i, t in enumerate(tokens):
            if t.kind != "id" or t.text != "at":
                continue
            if i + 2 >= n or i == 0:
                continue
            prev = tokens[i - 1]
            if not (prev.kind == "punct" and prev.text in (".", ">")):
                continue  # `.at` or `->at` (-> lexes as '-' '>')
            if not (tokens[i + 1].kind == "punct" and
                    tokens[i + 1].text == "("):
                continue
            arg = tokens[i + 2]
            if arg.kind != "str":
                continue
            key = arg.text.strip('"')
            if key not in optional:
                continue
            findings.append(Finding(
                relpath, t.line, "protocol-optional-discipline",
                "optional protocol member \"%s\" decoded with .at(): "
                "older peers omit it, so the frame must be read via "
                "find() with a default" % key))
    return findings


ALL_CHECKS = {
    "clone-completeness": check_clone_completeness,
    "determinism-hazards": check_determinism_hazards,
    "codec-coverage": check_codec_coverage,
    "protocol-optional-discipline": check_protocol_optional,
}
