"""Declaration-level C++ model for shotgun-lint's internal frontend.

Built on cpp_lexer tokens, this extracts exactly what the checks need:

  * classes/structs with their non-static data members (name, type
    text, whether they carry a default member initializer, line);
  * constructors, classified as copy-like (first parameter is
    `const ClassName &`), with the set of identifiers referenced
    after the parameter list (member-init list + body) -- the "clone
    path" of a copy constructor;
  * free-function bodies by name (for codec/fingerprint coverage);
  * per-file convenience sets (names of variables/members declared
    with unordered container types).

It is a heuristic parser: it tracks paren/brace/bracket depth plus a
conservative template-angle depth, and classifies class-body
statements by shape. That is enough to be exact on this repository's
idiom (and the fixture corpus pins the behaviours the checks rely
on); genuinely ambiguous constructs should be rare and are what
`lint:allow` suppressions are for.
"""

from collections import namedtuple

Member = namedtuple(
    "Member", ["name", "type_text", "has_initializer", "line"])

Ctor = namedtuple(
    "Ctor",
    [
        "class_name",   # unqualified class name
        "is_copy_like",  # first param is `const ClassName &`
        "has_body",     # definition (not just a declaration)
        "idents",       # names the ctor initializes/copies (see
                        # _covered_names)
        "line",
        "file",
    ],
)

ClassInfo = namedtuple(
    "ClassInfo",
    ["name", "qualified_name", "file", "line", "members", "ctors"],
)

FunctionBody = namedtuple(
    "FunctionBody", ["name", "idents", "line", "file"])

# Keywords that can prefix a declaration without changing its shape.
_DECL_QUALIFIERS = {
    "inline", "constexpr", "explicit", "virtual", "mutable",
    "volatile", "extern", "thread_local", "alignas",
}

_SKIP_STATEMENT_STARTS = {
    "using", "typedef", "friend", "template", "operator",
    "public", "private", "protected", "static_assert",
}


class _TokenCursor:
    """Iteration helper with angle-aware depth bookkeeping."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.i = 0

    def eof(self):
        return self.i >= len(self.tokens)

    def peek(self, offset=0):
        j = self.i + offset
        if j < len(self.tokens):
            return self.tokens[j]
        return None

    def next(self):
        tok = self.tokens[self.i]
        self.i += 1
        return tok


def _skip_balanced(tokens, i, open_ch, close_ch):
    """tokens[i] is `open_ch`; return index just past its match."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == open_ch:
                depth += 1
            elif t.text == close_ch:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _angle_open(tokens, i):
    """Heuristic: `<` at tokens[i] opens a template argument list when
    the previous token is an identifier or `::` (Foo<...>, std::map<)."""
    if i == 0:
        return False
    prev = tokens[i - 1]
    return (prev.kind == "id") or (prev.kind == "punct" and
                                   prev.text in ("::", ">"))


def _skip_angles(tokens, i):
    """tokens[i] is an opening `<`; return index past the matching `>`.

    Conservative: gives up (returns i + 1) if no plausible match is
    found before a `;` at depth 0, so a stray comparison cannot
    swallow the rest of the file.
    """
    depth = 0
    n = len(tokens)
    j = i
    while j < n:
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "<" and (j == i or _angle_open(tokens, j)):
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t.text == ";" and depth > 0:
                return i + 1  # unmatched: treat as comparison
            elif t.text in ("(", "{", "["):
                j = _skip_balanced(tokens, j,
                                   t.text,
                                   {"(": ")", "{": "}",
                                    "[": "]"}[t.text])
                continue
        j += 1
    return i + 1


def _split_statements(tokens):
    """Split a class body's token list into statements.

    A statement ends at a top-level `;`, or at the `}` of a function
    body / nested type that is directly followed by something other
    than a declarator (the trailing `;` of `struct X {...};` stays
    attached). Nested braces/parens/brackets are kept inside the
    statement tokens so callers can inspect them.
    """
    statements = []
    cur = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text == ";":
            cur.append(t)
            statements.append(cur)
            cur = []
            i += 1
            continue
        if t.kind == "punct" and t.text in ("(", "["):
            end = _skip_balanced(tokens, i, t.text,
                                 ")" if t.text == "(" else "]")
            cur.extend(tokens[i:end])
            i = end
            continue
        if t.kind == "punct" and t.text == "<" and _angle_open(tokens, i):
            end = _skip_angles(tokens, i)
            cur.extend(tokens[i:end])
            i = end
            continue
        if t.kind == "punct" and t.text == "{":
            end = _skip_balanced(tokens, i, "{", "}")
            cur.extend(tokens[i:end])
            i = end
            # `= {...}` initializers and nested types continue until
            # `;`; a function body terminates its statement.
            if _brace_was_initializer(cur, len(cur)):
                continue
            nxt = tokens[i] if i < n else None
            if nxt is not None and nxt.kind == "punct" and \
                    nxt.text == ";":
                cur.append(nxt)
                i += 1
            statements.append(cur)
            cur = []
            continue
        cur.append(t)
        i += 1
    if cur:
        statements.append(cur)
    return statements


def _brace_was_initializer(stmt_tokens, brace_group_end):
    """Decide whether the brace group that just closed at the end of
    `stmt_tokens` was a brace initializer (continue the statement)
    rather than a function/class body (end it)."""
    # Find the token immediately before the group's opening `{`.
    depth = 0
    idx = brace_group_end - 1
    while idx >= 0:
        t = stmt_tokens[idx]
        if t.kind == "punct":
            if t.text == "}":
                depth += 1
            elif t.text == "{":
                depth -= 1
                if depth == 0:
                    break
        idx -= 1
    before = stmt_tokens[idx - 1] if idx >= 1 else None
    if before is None:
        return False
    if before.kind == "punct" and before.text in ("=", ","):
        return True
    # `Type name{...}` (no parens seen yet): brace init of a declarator.
    if before.kind == "id":
        seen_paren = any(
            t.kind == "punct" and t.text == "(" for t in
            stmt_tokens[:idx])
        first = _first_significant(stmt_tokens)
        is_type_def = first is not None and first.kind == "id" and \
            first.text in ("class", "struct", "enum", "union")
        return not seen_paren and not is_type_def
    return False


def _first_significant(stmt_tokens):
    for t in stmt_tokens:
        if t.kind == "id" and t.text in _DECL_QUALIFIERS:
            continue
        return t
    return None


def _strip_qualifiers(stmt_tokens):
    i = 0
    while i < len(stmt_tokens) and stmt_tokens[i].kind == "id" and \
            stmt_tokens[i].text in _DECL_QUALIFIERS:
        i += 1
    return stmt_tokens[i:]


def _top_level_split(tokens, sep=","):
    """Split on `sep` at paren/brace/bracket/angle depth zero."""
    parts = []
    cur = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text in ("(", "{", "["):
            end = _skip_balanced(tokens, i, t.text,
                                 {"(": ")", "{": "}",
                                  "[": "]"}[t.text])
            cur.extend(tokens[i:end])
            i = end
            continue
        if t.kind == "punct" and t.text == "<" and _angle_open(tokens, i):
            end = _skip_angles(tokens, i)
            cur.extend(tokens[i:end])
            i = end
            continue
        if t.kind == "punct" and t.text == sep:
            parts.append(cur)
            cur = []
            i += 1
            continue
        cur.append(t)
        i += 1
    parts.append(cur)
    return parts


def _idents(tokens):
    return {t.text for t in tokens if t.kind == "id"}


def _first_param_name(params):
    """Declarator name of the first parameter, or None if unnamed."""
    first = _top_level_split(params)[0] if params else []
    for t in reversed(first):
        if t.kind == "id":
            if t.text in ("const", "volatile"):
                return None
            return t.text
    return None


def _covered_names(tokens, src_name):
    """Names a constructor demonstrably initializes or copies.

    A bare mention is not coverage (`ctx.tage = &tage_;` in the body
    must not excuse `tage_` missing from the init list). A name
    counts when it is read from the source object (`other.m`) or is
    the target of an init/assignment (`m(...)`, `m{...}`, `m = ...`).
    """
    covered = set()
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        prev = tokens[i - 1] if i > 0 else None
        prev2 = tokens[i - 2] if i > 1 else None
        if src_name is not None and prev is not None and \
                prev.kind == "punct" and prev.text == "." and \
                prev2 is not None and prev2.kind == "id" and \
                prev2.text == src_name:
            covered.add(t.text)
            continue
        nxt = tokens[i + 1] if i + 1 < n else None
        if nxt is not None and nxt.kind == "punct" and \
                nxt.text in ("(", "{", "="):
            covered.add(t.text)
    return covered


def _find_matching_paren(tokens, i):
    return _skip_balanced(tokens, i, "(", ")")


def _is_copy_like_params(param_tokens, class_name):
    """First parameter is `const ClassName [<...>] &`."""
    toks = [t for t in param_tokens
            if not (t.kind == "id" and t.text in ("const", "volatile"))]
    if not toks:
        return False
    if not (toks[0].kind == "id" and toks[0].text == class_name):
        return False
    j = 1
    if j < len(toks) and toks[j].kind == "punct" and toks[j].text == "<":
        j = _skip_angles(toks, j)
    return j < len(toks) and toks[j].kind == "punct" and \
        toks[j].text == "&"


def _has_top_level_paren_before_init(tokens):
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text == "=":
            return False  # initializer begins; declaration part clean
        if t.kind == "punct" and t.text == "<" and _angle_open(tokens, i):
            i = _skip_angles(tokens, i)
            continue
        if t.kind == "punct" and t.text in ("{", "["):
            i = _skip_balanced(tokens, i, t.text,
                               "}" if t.text == "{" else "]")
            continue
        if t.kind == "punct" and t.text == "(":
            return True
        i += 1
    return False


def _parse_member_statement(stmt, file_line_fallback):
    """Parse one class-body statement shaped like a data-member
    declaration. Returns a list of Member (multi-declarator aware),
    or [] when the statement is not a data member."""
    stmt = _strip_qualifiers(stmt)
    if not stmt:
        return []

    # Drop the trailing `;`.
    if stmt[-1].kind == "punct" and stmt[-1].text == ";":
        stmt = stmt[:-1]
    if not stmt:
        return []

    # A top-level `(` before any initializer means this is a function
    # declaration/definition, not a data member. Parens inside
    # template arguments (std::function<void(int)>), brace
    # initializers and array extents do not count.
    if _has_top_level_paren_before_init(stmt):
        return []

    declarators = _top_level_split(stmt)
    members = []
    type_end_name = None
    for seg_idx, seg in enumerate(declarators):
        if not seg:
            continue
        # Split off any initializer.
        init_idx = None
        for k, t in enumerate(seg):
            if t.kind == "punct" and t.text in ("=", "{"):
                init_idx = k
                break
            if t.kind == "punct" and t.text == ":" and k > 0:
                init_idx = k  # bitfield width: treat like "the rest"
                break
        decl_part = seg if init_idx is None else seg[:init_idx]
        has_init = init_idx is not None and \
            seg[init_idx].text in ("=", "{")
        # Declarator name: last identifier of the declaration part
        # (skipping a trailing array extent).
        name_tok = None
        for t in reversed(decl_part):
            if t.kind == "id":
                name_tok = t
                break
        if name_tok is None:
            continue
        if name_tok.text in ("class", "struct", "enum", "union",
                             "const", "unsigned", "signed"):
            continue
        if seg_idx == 0:
            # The first segment holds the type; require at least one
            # token before the name (a bare identifier is not a
            # declaration).
            pos = decl_part.index(name_tok)
            if pos == 0:
                continue
            type_text = " ".join(t.text for t in decl_part[:pos])
            type_end_name = type_text
        else:
            type_text = type_end_name or ""
        members.append(Member(name_tok.text, type_text, has_init,
                              name_tok.line
                              if name_tok.line else file_line_fallback))
    return members


def _parse_class_body(tokens, name, qualified, file, line, classes):
    """Parse the token list of one class body (without braces)."""
    members = []
    ctors = []
    statements = _split_statements(tokens)
    for stmt in statements:
        stripped = _strip_qualifiers(stmt)
        if not stripped:
            continue
        first = stripped[0]
        # Access specifiers arrive as `public : ...` fused with the
        # following statement only when the statement splitter saw no
        # `;` between them -- strip leading `spec :` pairs.
        while first.kind == "id" and first.text in ("public", "private",
                                                    "protected"):
            if len(stripped) >= 2 and stripped[1].kind == "punct" and \
                    stripped[1].text == ":":
                stripped = _strip_qualifiers(stripped[2:])
                if not stripped:
                    break
                first = stripped[0]
            else:
                break
        if not stripped:
            continue
        first = stripped[0]
        if first.kind != "id" and not (first.kind == "punct" and
                                       first.text == "~"):
            continue
        if first.kind == "id" and first.text in _SKIP_STATEMENT_STARTS:
            continue
        if first.kind == "punct" and first.text == "~":
            continue  # destructor
        if first.kind == "id" and first.text == "static":
            continue  # static member or function
        # Nested class/struct definition.
        if first.kind == "id" and first.text in ("class", "struct",
                                                 "union", "enum"):
            _parse_nested_type(stripped, qualified, file, classes,
                               members)
            continue
        # Constructor?
        if first.kind == "id" and first.text == name and \
                len(stripped) >= 2 and stripped[1].kind == "punct" and \
                stripped[1].text == "(":
            ctors.append(_parse_ctor(stripped, name, file))
            continue
        # Data member (or a member function, which parses to []).
        mems = _parse_member_statement(stripped, line)
        members.extend(mems)
    classes.append(ClassInfo(name, qualified, file, line, members,
                             ctors))


def _parse_nested_type(stmt, outer_qualified, file, classes, members):
    """`struct X { ... } [declarator];` inside a class body."""
    kind = stmt[0].text
    i = 1
    if kind == "enum" and i < len(stmt) and stmt[i].kind == "id" and \
            stmt[i].text in ("class", "struct"):
        i += 1
    nested_name = None
    if i < len(stmt) and stmt[i].kind == "id":
        nested_name = stmt[i].text
        i += 1
    # Skip an enum base (`: underlying_type`).
    while i < len(stmt) and not (stmt[i].kind == "punct" and
                                 stmt[i].text in ("{", ";")):
        i += 1
    if i >= len(stmt) or stmt[i].text == ";":
        return  # forward declaration
    body_end = _skip_balanced(stmt, i, "{", "}")
    if kind in ("class", "struct") and nested_name is not None:
        _parse_class_body(stmt[i + 1:body_end - 1], nested_name,
                          outer_qualified + "::" + nested_name, file,
                          stmt[0].line, classes)
    # Trailing declarator: `struct X { ... } x_;`
    tail = stmt[body_end:]
    for t in tail:
        if t.kind == "id":
            members.append(Member(t.text, nested_name or kind, False,
                                  t.line))
            break


def _parse_ctor(stmt, class_name, file):
    paren = 1
    params_end = _find_matching_paren(stmt, paren)
    params = stmt[paren + 1:params_end - 1]
    rest = stmt[params_end:]
    has_body = any(t.kind == "punct" and t.text == "{" for t in rest)
    covered = _covered_names(rest, _first_param_name(params))
    return Ctor(class_name, _is_copy_like_params(params, class_name),
                has_body, covered, stmt[0].line, file)


def parse_file(tokens, file):
    """Extract every class/struct definition in a token stream.

    Handles namespaces transparently (their braces are walked through)
    and nested classes (recorded with `Outer::Inner` qualified names).
    Returns (classes, out_of_line_ctors).
    """
    classes = []
    ctors = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        # Out-of-line constructor: `X :: X (`
        if t.kind == "id" and i + 3 < n and \
                tokens[i + 1].kind == "punct" and \
                tokens[i + 1].text == "::" and \
                tokens[i + 2].kind == "id" and \
                tokens[i + 2].text == t.text and \
                tokens[i + 3].kind == "punct" and \
                tokens[i + 3].text == "(":
            params_end = _find_matching_paren(tokens, i + 3)
            params = tokens[i + 4:params_end - 1]
            # Definition runs to the end of its body (or `;` for a
            # qualified declaration, which cannot happen for ctors).
            j = params_end
            body_start = None
            while j < n:
                tj = tokens[j]
                if tj.kind == "punct" and tj.text == "{":
                    body_start = j
                    break
                if tj.kind == "punct" and tj.text == ";":
                    break
                j += 1
            if body_start is not None:
                body_end = _skip_balanced(tokens, body_start, "{", "}")
                covered = _covered_names(
                    tokens[params_end:body_end],
                    _first_param_name(params))
                ctors.append(Ctor(
                    t.text,
                    _is_copy_like_params(params, t.text),
                    True, covered, t.line, file))
                i = body_end
                continue
            i = params_end
            continue

        if t.kind == "id" and t.text in ("class", "struct"):
            # Skip `enum class` handled elsewhere; find the name.
            j = i + 1
            # alignas/attributes are not used in this tree.
            if j < n and tokens[j].kind == "id":
                cls_name = tokens[j].text
                k = j + 1
                # Base clause or body?
                while k < n and not (tokens[k].kind == "punct" and
                                     tokens[k].text in ("{", ";")):
                    # `class X final : public Y {`
                    k += 1
                if k < n and tokens[k].text == "{":
                    body_end = _skip_balanced(tokens, k, "{", "}")
                    _parse_class_body(tokens[k + 1:body_end - 1],
                                      cls_name, cls_name, file,
                                      t.line, classes)
                    i = body_end
                    continue
            i = j
            continue
        i += 1
    return classes, ctors


def find_function_bodies(tokens, names, file):
    """Locate free-function definitions whose unqualified name is in
    `names`; return FunctionBody records with body identifier sets."""
    found = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text in names and i + 1 < n and \
                tokens[i + 1].kind == "punct" and \
                tokens[i + 1].text == "(":
            # Exclude calls: a definition's `)` is followed by `{`
            # (possibly with const/noexcept, not used for free fns).
            params_end = _find_matching_paren(tokens, i + 1)
            j = params_end
            while j < n and tokens[j].kind == "id":
                j += 1  # noexcept etc.
            if j < n and tokens[j].kind == "punct" and \
                    tokens[j].text == "{":
                body_end = _skip_balanced(tokens, j, "{", "}")
                found.append(FunctionBody(
                    t.text, _idents(tokens[j:body_end]), t.line, file))
                i = body_end
                continue
        i += 1
    return found


def unordered_container_names(tokens):
    """Names declared (anywhere in this token stream) with an
    unordered_map/unordered_set type -- members, locals and params."""
    names = set()
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text in ("unordered_map",
                                         "unordered_set",
                                         "unordered_multimap",
                                         "unordered_multiset"):
            j = i + 1
            if j < n and tokens[j].kind == "punct" and \
                    tokens[j].text == "<":
                j = _skip_angles(tokens, j)
            # Reference/pointer declarators.
            while j < n and tokens[j].kind == "punct" and \
                    tokens[j].text in ("&", "*"):
                j += 1
            if j < n and tokens[j].kind == "id":
                names.add(tokens[j].text)
            i = j
            continue
        i += 1
    return names
