#!/usr/bin/env python3
"""shotgun-lint: invariant-enforcing static analysis for this repo.

Four checks (see tools/lint/README.md and checks.py):
clone-completeness, determinism-hazards, codec-coverage,
protocol-optional-discipline.

Findings print as `path:line: [check] message`, sorted, to stdout.
Exit status: 0 clean, 1 unsuppressed findings, 2 usage/parse error.

Suppression: a comment `// lint:allow(<check>): <reason>` on the
finding's line or the line directly above waives it. The reason is
mandatory; a reasonless or unknown-check annotation is itself a
finding (`suppression-syntax`) that cannot be waived.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_mod  # noqa: E402
import cpp_lexer  # noqa: E402
import cpp_model  # noqa: E402
from checks import ALL_CHECKS, CHECK_NAMES, Finding  # noqa: E402
from frontends import LibclangFrontend, load_libclang  # noqa: E402

_SOURCE_EXTS = (".hh", ".cc", ".h", ".cpp", ".hpp")

_SUPPRESS_RE = re.compile(
    r"lint:allow\(([A-Za-z0-9_\-, ]+)\)(\s*:\s*(\S.*?))?\s*(\*/)?\s*$")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def _prune_comments(obj):
    """Strip `_comment`-style keys so documentation inside config.json
    cannot leak into check policy (e.g. the banned-identifier map)."""
    if isinstance(obj, dict):
        return {k: _prune_comments(v) for k, v in obj.items()
                if not k.startswith("_")}
    if isinstance(obj, list):
        return [_prune_comments(v) for v in obj]
    return obj


class Suppressions:
    """Per-file `lint:allow` annotations, parsed from comments."""

    def __init__(self):
        # file -> line -> set of check names
        self.by_line = {}
        self.syntax_findings = []
        # (file, line, check) actually used, for unused reporting
        self._used = set()

    def add_file(self, relpath, comments):
        lines = self.by_line.setdefault(relpath, {})
        for comment in comments:
            m = _SUPPRESS_RE.search(comment.text)
            if m is None:
                # Prose may mention lint:allow; only the call-shaped
                # form is an annotation attempt.
                if "lint:allow(" in comment.text:
                    self.syntax_findings.append(Finding(
                        relpath, comment.line, "suppression-syntax",
                        "malformed lint:allow annotation; use "
                        "`// lint:allow(<check>): <reason>`"))
                continue
            names = [n.strip() for n in m.group(1).split(",")
                     if n.strip()]
            reason = m.group(3)
            if not reason:
                self.syntax_findings.append(Finding(
                    relpath, comment.line, "suppression-syntax",
                    "lint:allow(%s) has no reason; a waiver must "
                    "say why" % ", ".join(names)))
                continue
            for name in names:
                if name not in CHECK_NAMES:
                    self.syntax_findings.append(Finding(
                        relpath, comment.line, "suppression-syntax",
                        "lint:allow names unknown check '%s' "
                        "(known: %s)" % (name,
                                         ", ".join(CHECK_NAMES))))
                    continue
                lines.setdefault(comment.line, set()).add(name)

    def covers(self, finding):
        lines = self.by_line.get(finding.file, {})
        for line in (finding.line, finding.line - 1):
            if finding.check in lines.get(line, ()):
                self._used.add((finding.file, line, finding.check))
                return True
        return False

    def unused(self):
        out = []
        for relpath, lines in self.by_line.items():
            for line, names in lines.items():
                for name in names:
                    if (relpath, line, name) not in self._used:
                        out.append((relpath, line, name))
        return sorted(out)


class Analysis:
    """Everything the checks consume, loaded once per run."""

    def __init__(self, root, config):
        self.root = root
        self.config = config
        self.files = {}           # relpath -> (tokens, comments)
        self.classes = []         # ClassInfo
        self._out_of_line = []    # Ctor defined outside a class body
        self.function_bodies = {}  # name -> FunctionBody (merged)
        self.unordered_by_file = {}  # relpath -> names declared there
        self.includes_by_file = {}   # relpath -> quoted include paths
        self.suppressions = Suppressions()
        self.errors = []

    def scan_prefixes(self):
        prefixes = set()
        for key in ("clone_scope", "determinism_scope",
                    "protocol_scope", "extra_files"):
            prefixes.update(self.config.get(key, []))
        return sorted(prefixes)

    def load(self, frontend=None):
        prefixes = self.scan_prefixes()
        paths = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = [d for d in sorted(dirnames)
                           if d not in (".git", "build")]
            for fn in sorted(filenames):
                if not fn.endswith(_SOURCE_EXTS):
                    continue
                full = os.path.join(dirpath, fn)
                rel = os.path.relpath(full, self.root).replace(
                    os.sep, "/")
                if any(rel.startswith(p) for p in prefixes):
                    paths.append((full, rel))

        codec_fn_names = set()
        for entry in self.config.get("codec", {}).get("structs", []):
            for role in ("encoder", "decoder", "fingerprint"):
                if entry.get(role):
                    codec_fn_names.add(entry[role])

        for full, rel in paths:
            with open(full, "r", encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
            try:
                tokens, comments = cpp_lexer.tokenize(text)
            except cpp_lexer.LexError as e:
                self.errors.append("%s: %s" % (rel, e))
                continue
            self.files[rel] = (tokens, comments)
            self.suppressions.add_file(rel, comments)
            self.unordered_by_file[rel] = \
                cpp_model.unordered_container_names(tokens)
            self.includes_by_file[rel] = _INCLUDE_RE.findall(text)

            classes, ctors = None, None
            if frontend is not None:
                try:
                    classes, ctors = frontend.parse_file(full, rel)
                except Exception:
                    classes, ctors = None, None  # fall back per-file
            if classes is None:
                classes, ctors = cpp_model.parse_file(tokens, rel)
            self.classes.extend(classes)
            self._out_of_line.extend(ctors)

            for body in cpp_model.find_function_bodies(
                    tokens, codec_fn_names, rel):
                prev = self.function_bodies.get(body.name)
                if prev is None:
                    self.function_bodies[body.name] = body
                else:
                    self.function_bodies[body.name] = prev._replace(
                        idents=prev.idents | body.idents)

    def ctors_of(self, cls):
        return list(cls.ctors) + [c for c in self._out_of_line
                                  if c.class_name == cls.name]

    def unordered_names_for(self, relpath):
        """Names declared with unordered container types visible to
        `relpath`: its own declarations plus those of the scanned
        headers it directly includes. Include-aware scoping keeps
        e.g. one subsystem's unordered member name from tainting an
        unrelated subsystem's vector of the same name."""
        names = set(self.unordered_by_file.get(relpath, ()))
        base = os.path.dirname(relpath)
        for inc in self.includes_by_file.get(relpath, ()):
            for cand in ("src/" + inc, inc,
                         (base + "/" + inc) if base else inc):
                if cand in self.unordered_by_file:
                    names |= self.unordered_by_file[cand]
                    break
        return names


def load_compile_commands(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError):
        return None
    args_by_file = {}
    for entry in db:
        file_path = os.path.normpath(
            os.path.join(entry.get("directory", "."),
                         entry.get("file", "")))
        command = entry.get("arguments")
        if command is None and "command" in entry:
            command = entry["command"].split()
        flags = [a for a in (command or [])[1:]
                 if a.startswith(("-I", "-D", "-std", "-isystem"))]
        args_by_file[file_path] = flags
    return args_by_file


def pick_frontend(kind, compile_commands):
    if kind == "internal":
        return None, "internal"
    cindex = load_libclang()
    if cindex is None:
        if kind == "libclang":
            sys.stderr.write(
                "shotgun-lint: --frontend libclang requested but "
                "clang.cindex is not importable (pip install "
                "libclang)\n")
            raise SystemExit(2)
        return None, "internal"
    return LibclangFrontend(cindex, compile_commands), "libclang"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="shotgun-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels "
                             "above this script)")
    parser.add_argument("--config", default=None,
                        help="policy file (default: "
                             "tools/lint/config.json under --root)")
    parser.add_argument("--frontend",
                        choices=("auto", "internal", "libclang"),
                        default="internal",
                        help="declaration-model frontend (default: "
                             "internal; golden outputs are recorded "
                             "against it)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the libclang "
                             "frontend (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME",
                        help="run only this check (repeatable)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print check names and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in CHECK_NAMES:
            print(name)
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or
                           os.path.join(script_dir, "..", ".."))
    config_path = args.config or os.path.join(root, "tools", "lint",
                                              "config.json")
    try:
        with open(config_path, "r", encoding="utf-8") as f:
            config = _prune_comments(json.load(f))
    except (OSError, ValueError) as e:
        sys.stderr.write("shotgun-lint: cannot load config %s: %s\n"
                         % (config_path, e))
        return 2

    selected = args.check or list(CHECK_NAMES)
    for name in selected:
        if name not in ALL_CHECKS:
            sys.stderr.write("shotgun-lint: unknown check '%s'\n"
                             % name)
            return 2

    cc_path = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")
    compile_commands = load_compile_commands(cc_path)
    frontend, frontend_name = pick_frontend(args.frontend,
                                            compile_commands)

    analysis = Analysis(root, config)
    analysis.load(frontend)
    if analysis.errors:
        for err in analysis.errors:
            sys.stderr.write("shotgun-lint: parse error: %s\n" % err)
        return 2

    findings = []
    for name in selected:
        findings.extend(ALL_CHECKS[name](analysis))
    findings.extend(analysis.suppressions.syntax_findings)

    unsuppressed = []
    suppressed_count = 0
    for f in findings:
        if f.check in CHECK_NAMES and analysis.suppressions.covers(f):
            suppressed_count += 1
        else:
            unsuppressed.append(f)

    for relpath, line, name in analysis.suppressions.unused():
        if name not in selected:
            continue  # not exercised this run; can't judge
        unsuppressed.append(Finding(
            relpath, line, "suppression-syntax",
            "unused lint:allow(%s): nothing to waive here any more; "
            "delete it" % name))

    unsuppressed.sort(key=lambda f: (f.file, f.line, f.check,
                                     f.message))
    for f in unsuppressed:
        print("%s:%d: [%s] %s" % (f.file, f.line, f.check, f.message))

    sys.stderr.write(
        "shotgun-lint: %d file(s), frontend=%s, %d finding(s), "
        "%d suppressed\n" % (len(analysis.files), frontend_name,
                             len(unsuppressed), suppressed_count))
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    raise SystemExit(main())
