// Fixture: a file doing everything right, in scope for every check
// -> zero findings. Ordered containers with value keys, a custom
// comparator for the pointer-keyed set, a complete copy constructor,
// initialized scalars, find() for optional protocol members.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace fix
{

struct Stable
{
    bool operator()(const int *a, const int *b) const;
};

struct Frame
{
    const Frame *find(const std::string &key) const;
    bool boolean() const;
};

class Model
{
  public:
    Model() = default;
    Model(const Model &other)
        : table_(other.table_), seed_(other.seed_),
          ptrs_(other.ptrs_)
    {
    }

    std::uint64_t
    sum() const
    {
        std::uint64_t s = 0;
        for (const auto &kv : table_)
            s += kv.second;
        return s;
    }

    bool
    timingOn(const Frame &f) const
    {
        const Frame *t = f.find("timing");
        return t != nullptr && t->boolean();
    }

  private:
    std::map<std::uint64_t, std::uint64_t> table_;
    std::uint64_t seed_ = 1;
    std::set<const int *, Stable> ptrs_;
};

} // namespace fix
