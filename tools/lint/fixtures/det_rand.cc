// Fixture: libc randomness and wall-clock reads in sim-reachable
// code -> three findings. The reasonless lint:allow above the
// random_device does NOT suppress (a waiver must say why) and is
// itself a suppression-syntax finding.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace fix
{

inline unsigned
jitter()
{
    return static_cast<unsigned>(rand());
}

inline std::uint64_t
entropy()
{
    // lint:allow(determinism-hazards)
    std::random_device rd;
    return rd();
}

inline std::uint64_t
stamp()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

} // namespace fix
