// Fixture: a lint:allow with a reason on the line above the member
// waives the clone-completeness finding for `scratch_`.
#include <vector>

namespace fix
{

class Cache
{
  public:
    Cache(const Cache &other) : lines_(other.lines_) {}

  private:
    std::vector<int> lines_;
    // lint:allow(clone-completeness): scratch buffer, rebuilt lazily on first use after a restore
    std::vector<int> scratch_;
};

} // namespace fix
