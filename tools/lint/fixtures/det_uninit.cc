// Fixture: uninitialized scalar members of checkpointable structs
// -> three findings (instrs, ipc, cursor). Default member
// initializers and constructor-body assignments both count as
// initialization.
#include <cstdint>

namespace fix
{

struct Snapshot
{
    std::uint64_t cycles = 0;
    std::uint64_t instrs;
    double ipc;
    int *cursor;
};

class Window
{
  public:
    Window() { start_ = 0; }

  private:
    std::uint64_t start_;
    std::uint64_t end_ = 0;
};

} // namespace fix
