// Fixture: iterating an unordered container (range-for or explicit
// iterators) is a determinism hazard -> two findings.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fix
{

class Histogram
{
  public:
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &kv : counts_)
            sum += kv.second;
        return sum;
    }

    std::uint64_t
    first() const
    {
        return *seen_.begin();
    }

    bool
    contains(std::uint64_t key) const
    {
        return seen_.count(key) != 0; // point lookups are fine
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
    std::unordered_set<std::uint64_t> seen_;
};

} // namespace fix
