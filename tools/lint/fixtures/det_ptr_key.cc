// Fixture: ordered containers keyed on raw pointers with the default
// comparator iterate in allocation-dependent address order -> two
// findings (byTask_, all_). A custom deterministic comparator
// (ordered_) or a pointer as the *value* (byId_) is fine.
#include <map>
#include <set>

namespace fix
{

struct Task
{
    int id = 0;
};

struct TaskOrder
{
    bool operator()(const Task *a, const Task *b) const;
};

struct Queues
{
    std::map<Task *, int> byTask_;
    std::set<Task *, TaskOrder> ordered_;
    std::map<int, Task *> byId_;
    std::multiset<const Task *> all_;
};

} // namespace fix
