// Fixture: protocol-optional-discipline. Optional members read with
// .at() -> two findings ("timing" via `.`, "spans" via `->`).
// Required members may use .at(); optional members via find() are
// the correct pattern.
#include <string>

namespace fix
{

struct Value
{
    const Value &at(const std::string &key) const;
    const Value *find(const std::string &key) const;
    bool boolean() const;
};

inline bool
readFrame(const Value &v, const Value *pv)
{
    bool ok = v.at("required").boolean();
    if (const Value *t = v.find("timing"))
        ok = ok && t->boolean();
    ok = ok && v.at("timing").boolean();
    ok = ok && pv->at("spans").boolean();
    return ok;
}

} // namespace fix
