// Fixture: codec-coverage. `label` is missing from the encoder ->
// one finding. The decoder covers every member; the fingerprint
// covers alpha/beta through delegation to the encoder, and `label`
// is excluded for it (with a reason) in fixtures/config.json.
#include <cstdint>
#include <string>

namespace fix
{

struct WireConfig
{
    std::uint64_t alpha = 0;
    std::uint64_t beta = 0;
    std::string label;
};

std::uint64_t
encodeWireConfig(const WireConfig &c)
{
    return c.alpha * 31 + c.beta;
}

WireConfig
decodeWireConfig(std::uint64_t alpha, std::uint64_t beta,
                 const std::string &label)
{
    WireConfig c;
    c.alpha = alpha;
    c.beta = beta;
    c.label = label;
    return c;
}

std::uint64_t
wireFingerprint(const WireConfig &c)
{
    return encodeWireConfig(c);
}

} // namespace fix
