// Fixture: this file matches the `clock_allowed` scope (the
// src/obs/ + src/runner/progress.* carve-out), so wall-clock reads
// here are fine -> zero findings.
#include <chrono>
#include <cstdint>

namespace fix
{

inline std::uint64_t
wallClockMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace fix
