// Fixture: a complete clone path produces no findings. `impl_` is
// covered by the body assignment (the Core::scheme_ idiom), the rest
// by the member-init list. Also proves that a mere *mention* of a
// member does not count: `count_` appears in touch() but is covered
// by the init list, not by that mention.
#include <cstdint>
#include <memory>

namespace fix
{

struct Impl
{
    Impl *clone(int *ctx) const;
};

class Engine
{
  public:
    Engine(const Engine &other, int *ctx)
        : count_(other.count_)
    {
        impl_.reset(other.impl_ ? other.impl_->clone(ctx) : nullptr);
    }

    void touch() { ++count_; }

  private:
    std::unique_ptr<Impl> impl_;
    std::uint64_t count_ = 0;
};

} // namespace fix
