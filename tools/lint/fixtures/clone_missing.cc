// Fixture: clone-completeness must flag a member absent from the
// copy constructor. `misses_` is neither read from `other` nor
// initialized by the ctor -> one finding at its declaration.
#include <cstdint>
#include <vector>

namespace fix
{

class Tracker
{
  public:
    Tracker() = default;
    Tracker(const Tracker &other)
        : entries_(other.entries_), hits_(other.hits_)
    {
    }

  private:
    std::vector<std::uint64_t> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace fix
