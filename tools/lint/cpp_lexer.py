"""Tokenizer for shotgun-lint's internal C++ frontend.

This is not a conforming C++ lexer; it is the narrow subset the lint
checks need: identifiers, numbers, string/char literals (including raw
strings), `::` as a single token, every other punctuator as a single
character, with comments and preprocessor directives stripped into
side tables. Line numbers are preserved on every token so findings and
suppressions anchor correctly.

The deliberate simplifications (single-char operators, no trigraphs,
no UCNs) are safe because every check in checks.py works on token
patterns and identifier sets, never on full expression grammar.
"""

from collections import namedtuple

# kind: "id" | "num" | "str" | "chr" | "punct"
Token = namedtuple("Token", ["kind", "text", "line"])

# A comment with its location, for suppression parsing.
Comment = namedtuple("Comment", ["line", "text"])

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


class LexError(Exception):
    """Unterminated literal/comment; carries the source line."""

    def __init__(self, message, line):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


def tokenize(text):
    """Return (tokens, comments) for one translation unit's text."""
    tokens = []
    comments = []
    i = 0
    n = len(text)
    line = 1

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # ---------------------------------------------------- comments
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                end = text.find("\n", i)
                if end == -1:
                    end = n
                comments.append(Comment(line, text[i:end]))
                i = end
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end == -1:
                    raise LexError("unterminated block comment", line)
                body = text[i:end + 2]
                # A block comment may span lines; record it at its
                # first line (suppressions are single-line anyway).
                comments.append(Comment(line, body))
                line += body.count("\n")
                i = end + 2
                continue

        # ---------------------------------------- preprocessor directive
        if c == "#" and _at_line_start(tokens, text, i):
            # Consume the directive including backslash continuations.
            while True:
                end = text.find("\n", i)
                if end == -1:
                    i = n
                    break
                if text[end - 1] == "\\":
                    line += 1
                    i = end + 1
                    continue
                i = end  # leave the newline for the main loop
                break
            continue

        # --------------------------------------------------- raw string
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j == -1:
                raise LexError("malformed raw string", line)
            delim = text[i + 2:j]
            closer = ")" + delim + '"'
            end = text.find(closer, j + 1)
            if end == -1:
                raise LexError("unterminated raw string", line)
            body = text[i:end + len(closer)]
            tokens.append(Token("str", body, line))
            line += body.count("\n")
            i = end + len(closer)
            continue

        # ------------------------------------------------ string literal
        if c == '"':
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                if text[j] == "\n":
                    raise LexError("unterminated string literal", line)
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("str", text[i:j + 1], line))
            i = j + 1
            continue

        # -------------------------------------------------- char literal
        if c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                if text[j] == "\n":
                    raise LexError("unterminated char literal", line)
                j += 1
            if j >= n:
                raise LexError("unterminated char literal", line)
            tokens.append(Token("chr", text[i:j + 1], line))
            i = j + 1
            continue

        # ---------------------------------------------------- identifier
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue

        # -------------------------------------------------------- number
        if c in _DIGITS or (c == "." and i + 1 < n and
                            text[i + 1] in _DIGITS):
            # pp-number: digits, identifier chars, '.', digit
            # separators, and exponent signs.
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _ID_CONT or ch in ".'":
                    j += 1
                    continue
                if ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                    continue
                break
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue

        # ---------------------------------------------------- punctuators
        if c == ":" and i + 1 < n and text[i + 1] == ":":
            tokens.append(Token("punct", "::", line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1

    return tokens, comments


def _at_line_start(tokens, text, i):
    """True when text[i] is the first non-whitespace char of its line.

    `#` only introduces a directive at line start; `a # b` cannot
    appear in C++, but being precise here is cheap.
    """
    j = i - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    return j < 0 or text[j] == "\n"
