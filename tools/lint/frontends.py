"""Frontend selection for shotgun-lint.

The *internal* frontend (cpp_lexer + cpp_model) is the reference
implementation: pure Python, zero dependencies, pinned by the fixture
corpus, and what CI runs. When `clang.cindex` (pip `libclang`) is
importable, the *libclang* frontend can replace the declaration model
with a real AST walk driven by `compile_commands.json` -- strictly
more precise on exotic C++, identical on this repository's idiom.

`--frontend auto` (the default) tries libclang and silently falls
back; `--frontend libclang` makes its absence an error; `--frontend
internal` never imports it, which is what the golden fixture outputs
are recorded against.
"""

import os

from cpp_model import ClassInfo, Ctor, Member


def load_libclang():
    """Return the clang.cindex module, or None when unavailable."""
    try:
        import clang.cindex  # type: ignore
        return clang.cindex
    except Exception:
        return None


class LibclangFrontend:
    """Builds the same (classes, out_of_line_ctors) model as
    cpp_model.parse_file, from a libclang AST."""

    def __init__(self, cindex, compile_args_by_file=None):
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.compile_args = compile_args_by_file or {}

    def parse_file(self, path, relpath):
        args = self.compile_args.get(os.path.abspath(path),
                                     ["-std=c++17"])
        tu = self.index.parse(path, args=args)
        classes = []
        ctors = []
        self._walk(tu.cursor, path, relpath, classes, ctors)
        return classes, ctors

    def _walk(self, cursor, path, relpath, classes, ctors):
        ck = self.cindex.CursorKind
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or \
                    os.path.abspath(loc.file.name) != \
                    os.path.abspath(path):
                continue
            if child.kind in (ck.NAMESPACE,):
                self._walk(child, path, relpath, classes, ctors)
            elif child.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                    child.is_definition():
                self._class(child, relpath, child.spelling, classes,
                            ctors)
            elif child.kind == ck.CONSTRUCTOR and \
                    child.is_definition() and \
                    child.semantic_parent is not None and \
                    child.lexical_parent != child.semantic_parent:
                ctors.append(self._ctor(child, relpath))

    def _class(self, cursor, relpath, qualified, classes, ctors):
        ck = self.cindex.CursorKind
        members = []
        own_ctors = []
        for child in cursor.get_children():
            if child.kind == ck.FIELD_DECL:
                members.append(Member(
                    child.spelling,
                    child.type.spelling,
                    self._has_default_init(child),
                    child.location.line))
            elif child.kind == ck.CONSTRUCTOR:
                own_ctors.append(self._ctor(child, relpath))
            elif child.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                    child.is_definition():
                self._class(child, relpath,
                            qualified + "::" + child.spelling,
                            classes, ctors)
        classes.append(ClassInfo(
            cursor.spelling, qualified, relpath,
            cursor.location.line, members, own_ctors))

    def _ctor(self, cursor, relpath):
        cls = cursor.semantic_parent.spelling
        is_copy = cursor.is_copy_constructor()
        if not is_copy:
            # Clone-style: first param `const X &` with extras.
            params = [c for c in cursor.get_children()
                      if c.kind == self.cindex.CursorKind.PARM_DECL]
            if params:
                t = params[0].type.spelling.replace("const ", "")
                is_copy = t.rstrip("& ") .endswith(cls)
        idents = set()
        if cursor.is_definition():
            for tok in cursor.get_tokens():
                if tok.kind.name == "IDENTIFIER":
                    idents.add(tok.spelling)
        return Ctor(cls, is_copy, cursor.is_definition(), idents,
                    cursor.location.line, relpath)

    def _has_default_init(self, field):
        for tok in field.get_tokens():
            if tok.spelling in ("=", "{"):
                return True
        return False
