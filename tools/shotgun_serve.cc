/**
 * @file
 * shotgun-serve: the batch/async simulation service daemon. Wraps
 * the in-library SimServer (src/service/server.hh): listens on a TCP
 * or Unix-socket endpoint, queues submitted experiment grids,
 * executes them through the shared ExperimentRunner with a
 * fingerprint-keyed result cache, and streams results back as
 * newline-delimited JSON frames (protocol spec:
 * src/service/README.md).
 *
 *   shotgun-serve --listen unix:/run/shotgun.sock
 *   shotgun-serve --listen 0.0.0.0:7401 --jobs 8 --quiet
 *
 * The daemon prints `listening on <endpoint>` on stdout once ready
 * (scripts wait for that line), then serves until a client sends a
 * `shutdown` frame (e.g. `shotgun-submit --server ... --shutdown`).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "fleet/disk_cache.hh"
#include "fleet/worker.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runner/thread_pool.hh"
#include "service/server.hh"

using namespace shotgun;

namespace
{

const char *kUsage =
    "usage: shotgun-serve --listen ENDPOINT [--jobs N]\n"
    "                     [--cache-bytes N[K|M|G]] [--cache-dir DIR]\n"
    "                     [--cache-max-bytes N[K|M|G]]\n"
    "                     [--coordinator ENDPOINT] [--name NAME]\n"
    "                     [--heartbeat-ms N] [--quiet]\n"
    "\n"
    "Long-running simulation service: accepts experiment grids over\n"
    "the newline-delimited JSON frame protocol (see\n"
    "src/service/README.md), schedules concurrently submitted grids\n"
    "fairly over one worker pool (weighted fair share per grid\n"
    "point), and streams each job's results back in its grid order,\n"
    "serving repeated configurations from a fingerprint-keyed\n"
    "result cache.\n"
    "\n"
    "  --listen ENDPOINT   unix:<path> or <host>:<port> (TCP port 0\n"
    "                      asks the kernel for a free port; the\n"
    "                      resolved endpoint is printed on stdout)\n"
    "  --jobs N            worker pool size, also the cap on any\n"
    "                      single job's worker budget (default: one\n"
    "                      per hardware thread)\n"
    "  --cache-bytes N     byte budget for the result cache;\n"
    "                      least-recently-used results are evicted\n"
    "                      beyond it (suffix K/M/G; default:\n"
    "                      unbounded)\n"
    "  --cache-dir DIR     persistent result cache directory: every\n"
    "                      result is written through to disk and\n"
    "                      served from there after a restart\n"
    "  --cache-max-bytes N byte bound on the --cache-dir directory;\n"
    "                      oldest entries are trimmed first when a\n"
    "                      store pushes the total over the bound\n"
    "                      (suffix K/M/G; default: unbounded)\n"
    "  --coordinator EP    join the fleet at this shotgun-coord\n"
    "                      endpoint: register, heartbeat, and steal\n"
    "                      grid points (one slot per --jobs worker)\n"
    "                      while still serving direct clients\n"
    "  --name NAME         worker name shown in --fleet-status\n"
    "                      (default: serve-<pid>)\n"
    "  --heartbeat-ms N    fleet heartbeat period (default 1000)\n"
    "  --trace-out FILE    write a Chrome trace-event JSON of every\n"
    "                      span this daemon recorded (its own and\n"
    "                      trace-carrying jobs') when it shuts down;\n"
    "                      Perfetto-loadable\n"
    "  --uarch-report FILE write the process-lifetime stall\n"
    "                      attribution totals (the sim.uarch.*\n"
    "                      counters accumulated over every probed\n"
    "                      point this daemon simulated, with their\n"
    "                      conservation check) as JSON at shutdown\n"
    "  --quiet             no connection/job log lines on stderr\n"
    "\n"
    "Stop it with: shotgun-submit --server ENDPOINT --shutdown\n";

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "shotgun-serve: %s\n%s", message.c_str(),
                 kUsage);
    std::exit(cli::kUsageExitCode);
}

/** Positive byte count with optional K/M/G suffix, or usage error. */
std::uint64_t
parseByteSize(const char *flag, std::string text)
{
    std::uint64_t multiplier = 1;
    if (!text.empty()) {
        switch (text.back()) {
          case 'K': multiplier = 1ull << 10; break;
          case 'M': multiplier = 1ull << 20; break;
          case 'G': multiplier = 1ull << 30; break;
          default: break;
        }
        if (multiplier != 1)
            text.pop_back();
    }
    std::uint64_t bytes = 0;
    if (!parseU64(text.c_str(), bytes) || bytes == 0 ||
        bytes > UINT64_MAX / multiplier)
        usageError(std::string(flag) +
                   ": expected a positive byte count (K/M/G suffix "
                   "allowed), got '" + text + "'");
    return bytes * multiplier;
}

} // namespace

int
main(int argc, char **argv)
{
    int exit_code = 0;
    if (cli::handleStandardFlags(argc, argv, "shotgun-serve", kUsage,
                                 exit_code))
        return exit_code;

    std::string listen;
    std::string cache_dir;
    std::string trace_out;
    std::string uarch_report;
    std::uint64_t cache_max_bytes = 0;
    service::ServerOptions options;
    options.log = &std::cerr;
    fleet::WorkerOptions fleet_options;
    fleet_options.name = "serve-" + std::to_string(::getpid());

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usageError(std::string(flag) + ": missing value");
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--listen") == 0) {
            listen = next("--listen");
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            std::uint64_t jobs = 0;
            const char *text = next("--jobs");
            if (!parseU64(text, jobs) || jobs == 0 || jobs > 1024)
                usageError(std::string("--jobs: expected a worker "
                                       "count in [1, 1024], got '") +
                           text + "'");
            options.jobs = static_cast<unsigned>(jobs);
        } else if (std::strcmp(argv[i], "--cache-bytes") == 0) {
            options.cacheBytes = static_cast<std::size_t>(
                parseByteSize("--cache-bytes", next("--cache-bytes")));
        } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
            cache_dir = next("--cache-dir");
        } else if (std::strcmp(argv[i], "--cache-max-bytes") == 0) {
            cache_max_bytes = parseByteSize(
                "--cache-max-bytes", next("--cache-max-bytes"));
        } else if (std::strcmp(argv[i], "--coordinator") == 0) {
            fleet_options.coordinator = next("--coordinator");
        } else if (std::strcmp(argv[i], "--name") == 0) {
            fleet_options.name = next("--name");
        } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0) {
            std::uint64_t ms = 0;
            const char *text = next("--heartbeat-ms");
            if (!parseU64(text, ms) || ms == 0 || ms > 3600000)
                usageError(std::string("--heartbeat-ms: expected an "
                                       "interval in [1, 3600000], "
                                       "got '") +
                           text + "'");
            fleet_options.heartbeatMs = static_cast<unsigned>(ms);
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_out = next("--trace-out");
        } else if (std::strcmp(argv[i], "--uarch-report") == 0) {
            uarch_report = next("--uarch-report");
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            options.log = nullptr;
        } else {
            usageError(std::string("unknown option '") + argv[i] +
                       "'");
        }
    }
    if (listen.empty())
        usageError("--listen ENDPOINT is required");

    // The worker name doubles as the span lane group, so spans
    // shipped to a tracing coordinator say which worker ran them
    // even when this daemon itself writes no trace file.
    obs::tracer().setProcessName(fleet_options.name);
    if (!trace_out.empty())
        obs::tracer().enable(obs::newTraceId());

    try {
        service::SimServer server(listen, options);
        // The disk cache must be attached before serve() admits any
        // job (setBackend is not thread-safe against concurrent
        // gets); it outlives the server, which uses it from worker
        // threads until serve() returns.
        std::unique_ptr<fleet::DiskResultCache> disk;
        if (!cache_dir.empty()) {
            disk.reset(new fleet::DiskResultCache(cache_dir,
                                                  cache_max_bytes));
            fleet::DiskResultCache *cache = disk.get();
            server.setCacheBackend(
                [cache](const std::string &key,
                        service::CachedResult &out) {
                    return cache->load(key, out);
                },
                [cache](const std::string &key,
                        const service::CachedResult &value) {
                    cache->store(key, value);
                });
        }
        // Ready marker for scripts; resolved so `--listen host:0`
        // callers learn the actual port.
        std::printf("listening on %s\n", server.endpoint().c_str());
        std::fflush(stdout);
        if (!fleet_options.coordinator.empty()) {
            if (fleet_options.slots <= 1)
                fleet_options.slots =
                    options.jobs != 0
                        ? options.jobs
                        : runner::ThreadPool::hardwareJobs();
            if (options.log != nullptr)
                fleet_options.log = options.log;
            fleet::FleetWorker worker(server, fleet_options);
            worker.start();
            server.serve();
            worker.stop();
        } else {
            server.serve();
        }
        if (!trace_out.empty()) {
            if (!obs::writeChromeTrace(trace_out,
                                       obs::tracer().snapshot()))
                fatal("cannot write trace to '%s'",
                      trace_out.c_str());
            std::fprintf(stderr, "trace: %s\n", trace_out.c_str());
        }
        if (!uarch_report.empty()) {
            // Process-lifetime attribution totals: the sim.uarch.*
            // counters runSimulationDelta accumulates over every
            // probed point (zero for a daemon that never ran one),
            // plus their conservation check against measured cycles.
            obs::Registry &reg = obs::metrics();
            auto count = [&reg](const char *name) {
                return reg.counter(std::string("sim.uarch.") + name)
                    ->value();
            };
            const std::uint64_t cycles = count("cycles");
            const std::uint64_t active = count("active_cycles");
            const std::uint64_t stalls =
                count("stall_icache_miss") + count("stall_btb_miss") +
                count("stall_redirect") + count("stall_ftq_empty") +
                count("stall_backend_pressure") +
                count("stall_prefetch_in_flight");
            json::Value doc = json::Value::object();
            doc.set("worker",
                    json::Value::string(fleet_options.name));
            doc.set("cycles", json::Value::number(cycles));
            doc.set("conserves",
                    json::Value::boolean(active + stalls == cycles));
            json::Value totals = json::Value::object();
            for (const char *name :
                 {"active_cycles", "stall_icache_miss",
                  "stall_btb_miss", "stall_redirect",
                  "stall_ftq_empty", "stall_backend_pressure",
                  "stall_prefetch_in_flight"})
                totals.set(name, json::Value::number(count(name)));
            doc.set("totals", std::move(totals));
            std::ofstream out(uarch_report);
            if (!out || !(out << doc.dump() << "\n"))
                fatal("cannot write uarch report to '%s'",
                      uarch_report.c_str());
            std::fprintf(stderr, "uarch report: %s\n",
                         uarch_report.c_str());
        }
    } catch (const std::exception &e) {
        // SocketError (bad endpoint, bind failure) or anything else
        // escaping serve() (e.g. std::system_error from thread
        // exhaustion): exit 1 with a message, never std::terminate.
        fatal("%s", e.what());
    }
    return 0;
}
