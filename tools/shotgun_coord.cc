/**
 * @file
 * shotgun-coord: the fleet control-plane daemon. Wraps the
 * in-library FleetCoordinator (src/fleet/coordinator.hh): workers
 * started with `shotgun-serve --coordinator HOST:PORT` register
 * here and steal grid points from a global priority/cost-ordered
 * queue; clients submit with `shotgun-submit --coordinator
 * HOST:PORT` exactly as they would to a single server, and get
 * byte-identical results.
 *
 *   shotgun-coord --listen 0.0.0.0:7400 --cache-dir /var/cache/shotgun
 *   shotgun-coord --listen unix:/run/shotgun-coord.sock --quiet
 *
 * The daemon prints `listening on <endpoint>` on stdout once ready
 * (scripts wait for that line), then serves until a client sends a
 * `shutdown` frame (`shotgun-submit --coordinator ... --shutdown`).
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "fleet/coordinator.hh"
#include "obs/trace.hh"

using namespace shotgun;

namespace
{

const char *kUsage =
    "usage: shotgun-coord --listen ENDPOINT [--cache-bytes N[K|M|G]]\n"
    "                     [--cache-dir DIR]\n"
    "                     [--cache-max-bytes N[K|M|G]]\n"
    "                     [--heartbeat-ms N] [--miss-limit N]\n"
    "                     [--quiet]\n"
    "\n"
    "Fleet coordinator: holds a global work-stealing queue of grid\n"
    "points ordered by job priority then simulated length\n"
    "(longest-measured-first), hands them to registered\n"
    "shotgun-serve workers, requeues the points of a worker that\n"
    "dies or misses heartbeats, and streams each job's results to\n"
    "its client in grid order -- byte-identical to a local run.\n"
    "\n"
    "  --listen ENDPOINT   unix:<path> or <host>:<port> (TCP port 0\n"
    "                      asks the kernel for a free port; the\n"
    "                      resolved endpoint is printed on stdout)\n"
    "  --cache-bytes N     byte budget for the in-memory result\n"
    "                      cache (suffix K/M/G; default: unbounded)\n"
    "  --cache-dir DIR     persistent result cache directory; every\n"
    "                      result is written through to one JSON\n"
    "                      file per config fingerprint and served\n"
    "                      from disk after a restart\n"
    "  --cache-max-bytes N byte bound on the --cache-dir directory;\n"
    "                      oldest entries are trimmed first when a\n"
    "                      store pushes the total over the bound\n"
    "                      (suffix K/M/G; default: unbounded)\n"
    "  --heartbeat-ms N    expected worker heartbeat interval\n"
    "                      (default 1000)\n"
    "  --miss-limit N      heartbeats a worker may miss before its\n"
    "                      in-flight points are requeued on the\n"
    "                      survivors (default 3)\n"
    "  --trace-out FILE    write a Chrome trace-event JSON when the\n"
    "                      daemon shuts down: the coordinator's own\n"
    "                      queue/emit spans plus every span its\n"
    "                      workers shipped back, one cross-process\n"
    "                      fleet timeline (Perfetto-loadable)\n"
    "  --quiet             no fleet/job log lines on stderr\n"
    "\n"
    "Stop it with: shotgun-submit --coordinator ENDPOINT --shutdown\n";

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "shotgun-coord: %s\n%s", message.c_str(),
                 kUsage);
    std::exit(cli::kUsageExitCode);
}

/** Positive byte count with optional K/M/G suffix, or usage error. */
std::uint64_t
parseByteSize(const char *flag, std::string text)
{
    std::uint64_t multiplier = 1;
    if (!text.empty()) {
        switch (text.back()) {
          case 'K': multiplier = 1ull << 10; break;
          case 'M': multiplier = 1ull << 20; break;
          case 'G': multiplier = 1ull << 30; break;
          default: break;
        }
        if (multiplier != 1)
            text.pop_back();
    }
    std::uint64_t bytes = 0;
    if (!parseU64(text.c_str(), bytes) || bytes == 0 ||
        bytes > UINT64_MAX / multiplier)
        usageError(std::string(flag) +
                   ": expected a positive byte count (K/M/G suffix "
                   "allowed), got '" + text + "'");
    return bytes * multiplier;
}

} // namespace

int
main(int argc, char **argv)
{
    int exit_code = 0;
    if (cli::handleStandardFlags(argc, argv, "shotgun-coord", kUsage,
                                 exit_code))
        return exit_code;

    std::string listen;
    std::string trace_out;
    fleet::CoordinatorOptions options;
    options.log = &std::cerr;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usageError(std::string(flag) + ": missing value");
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--listen") == 0) {
            listen = next("--listen");
        } else if (std::strcmp(argv[i], "--cache-bytes") == 0) {
            options.cacheBytes = static_cast<std::size_t>(
                parseByteSize("--cache-bytes", next("--cache-bytes")));
        } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
            options.cacheDir = next("--cache-dir");
        } else if (std::strcmp(argv[i], "--cache-max-bytes") == 0) {
            options.cacheDirMaxBytes = parseByteSize(
                "--cache-max-bytes", next("--cache-max-bytes"));
        } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0) {
            std::uint64_t ms = 0;
            const char *text = next("--heartbeat-ms");
            if (!parseU64(text, ms) || ms == 0 || ms > 3600000)
                usageError(std::string("--heartbeat-ms: expected an "
                                       "interval in [1, 3600000], "
                                       "got '") +
                           text + "'");
            options.heartbeatIntervalMs = static_cast<unsigned>(ms);
        } else if (std::strcmp(argv[i], "--miss-limit") == 0) {
            std::uint64_t limit = 0;
            const char *text = next("--miss-limit");
            if (!parseU64(text, limit) || limit == 0 || limit > 1000)
                usageError(std::string("--miss-limit: expected a "
                                       "count in [1, 1000], got '") +
                           text + "'");
            options.heartbeatMissLimit =
                static_cast<unsigned>(limit);
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_out = next("--trace-out");
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            options.log = nullptr;
        } else {
            usageError(std::string("unknown option '") + argv[i] +
                       "'");
        }
    }
    if (listen.empty())
        usageError("--listen ENDPOINT is required");

    obs::tracer().setProcessName("coord");
    if (!trace_out.empty())
        obs::tracer().enable(obs::newTraceId());

    try {
        fleet::FleetCoordinator coordinator(listen, options);
        std::printf("listening on %s\n",
                    coordinator.endpoint().c_str());
        std::fflush(stdout);
        coordinator.serve();
        if (!trace_out.empty()) {
            if (!obs::writeChromeTrace(trace_out,
                                       obs::tracer().snapshot()))
                fatal("cannot write trace to '%s'",
                      trace_out.c_str());
            std::fprintf(stderr, "trace: %s\n", trace_out.c_str());
        }
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return 0;
}
