/**
 * @file
 * shotgun-trace: record, inspect and replay binary control-flow
 * traces (see trace/trace_io.hh for the format).
 *
 *   shotgun-trace record <workload> <file> [--instructions N]
 *                 [--warmup N] [--slack N] [--blocks N] [--seed N]
 *   shotgun-trace info <file>
 *   shotgun-trace replay <file> [--scheme NAME] [--instructions N]
 *                 [--warmup N] [--name NAME]
 *
 * `record` captures warm-up + measured + slack instructions so a
 * later replay with the same run lengths is bitwise-identical to the
 * live-generator run (the decoupled BPU reads ahead of retirement,
 * hence the slack). `replay` runs one delivery scheme over the file
 * through the exact runSimulation() path the benches use; the same
 * file can be swept through every bench with
 * `--workload trace:<file>[:name]`.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/parse.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"

using namespace shotgun;

namespace
{

const char *kUsage =
    "usage:\n"
    "  shotgun-trace record <workload> <file> [--instructions N]\n"
    "                [--warmup N] [--slack N] [--blocks N] [--seed N]\n"
    "  shotgun-trace info <file>\n"
    "  shotgun-trace replay <file> [--scheme NAME] [--instructions N]\n"
    "                [--warmup N] [--name NAME]\n"
    "  shotgun-trace index <file> [--every N] [--show]\n"
    "\n"
    "record: capture a workload's dynamic basic-block stream. The\n"
    "  workload is a preset name (nutch, streaming, apache, zeus,\n"
    "  oracle, db2) or an existing trace:<path>[:name] spec. By\n"
    "  default records warm-up + measured + slack instructions\n"
    "  (defaults 2000000 + 5000000 + 100000) so replays of the same\n"
    "  run lengths reproduce the live run bit for bit; --blocks N\n"
    "  records exactly N basic blocks instead.\n"
    "info: print a trace file's header.\n"
    "replay: run one scheme (default shotgun; baseline, fdip,\n"
    "  boomerang, confluence, rdip, ideal) over a recorded trace and\n"
    "  print the resulting metrics.\n"
    "index: build the sidecar window index <file>.idx (a seek\n"
    "  checkpoint every N records, default 65536) that lets windowed\n"
    "  simulation workers jump to their window instead of reading\n"
    "  the whole prefix; --show inspects an existing index instead.\n";

[[noreturn]] void
usageError(const char *message)
{
    std::fprintf(stderr, "shotgun-trace: %s\n%s", message, kUsage);
    std::exit(2);
}

std::uint64_t
parseU64Arg(const char *flag, const char *text)
{
    std::uint64_t value = 0;
    if (!parseU64(text, value)) {
        usageError((std::string(flag) +
                    ": expected a decimal count, got '" +
                    (text ? text : "") + "'")
                       .c_str());
    }
    return value;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 2)
        usageError("record needs <workload> and <file>");
    const std::string workload = argv[0];
    const std::string path = argv[1];

    std::uint64_t measure = 5000000, warmup = 2000000;
    std::uint64_t slack = 100000, blocks = 0, seed = 1;
    for (int i = 2; i < argc; ++i) {
        auto next = [&]() {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(argv[i], "--instructions") == 0)
            measure = parseU64Arg("--instructions", next());
        else if (std::strcmp(argv[i], "--warmup") == 0)
            warmup = parseU64Arg("--warmup", next());
        else if (std::strcmp(argv[i], "--slack") == 0)
            slack = parseU64Arg("--slack", next());
        else if (std::strcmp(argv[i], "--blocks") == 0)
            blocks = parseU64Arg("--blocks", next());
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = parseU64Arg("--seed", next());
        else
            usageError((std::string("unknown record option '") +
                        argv[i] + "'")
                           .c_str());
    }

    const WorkloadPreset preset = presetByName(workload);
    const Program &program = programFor(preset);
    if (!preset.tracePath.empty()) {
        // Writing over the trace being read would truncate it mid-read
        // and destroy the original recording.
        std::error_code ec;
        if (std::filesystem::weakly_canonical(path, ec) ==
            std::filesystem::weakly_canonical(preset.tracePath, ec)) {
            usageError(("record: destination '" + path +
                        "' is the trace being read; record to a "
                        "different file")
                           .c_str());
        }
        // Re-recording keeps the source's seed so the data-side model
        // of downstream replays still matches the original run.
        seed = readTraceInfo(preset.tracePath).traceSeed;
    }

    const auto source = openTraceSource(preset, program, seed);
    std::uint64_t written;
    if (blocks > 0) {
        written = recordTrace(*source, preset, seed, path, blocks);
    } else {
        written = recordTraceInstructions(*source, preset, seed, path,
                                          warmup + measure + slack);
    }
    const TraceInfo info = readTraceInfo(path);
    std::printf("recorded %" PRIu64 " basic blocks (%" PRIu64
                " instructions) of '%s' (seed %" PRIu64 ") to %s\n",
                written, info.instructions, preset.name.c_str(), seed,
                path.c_str());
    std::printf("replay it with: --workload trace:%s  (benches), or\n"
                "  shotgun-trace replay %s --scheme shotgun\n",
                path.c_str(), path.c_str());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 1)
        usageError("info needs <file>");
    const TraceInfo info = readTraceInfo(argv[0]);
    const ProgramParams &g = info.preset.program;
    std::printf("trace file     : %s\n", argv[0]);
    std::printf("format version : %u (little-endian)\n", kTraceVersion);
    std::printf("workload       : %s\n", info.preset.name.c_str());
    std::printf("records        : %" PRIu64 " basic blocks\n",
                info.records);
    std::printf("instructions   : %" PRIu64 "\n", info.instructions);
    std::printf("generator seed : %" PRIu64 "\n", info.traceSeed);
    std::printf("program        : '%s', %u app + %u OS functions, "
                "zipf %.4f, seed 0x%" PRIx64 "\n",
                g.name.c_str(), g.numFuncs, g.numOsFuncs, g.zipfAlpha,
                g.seed);
    std::printf("data side      : loadFrac %.3f, l1dMissRate %.3f, "
                "llcDataMissFrac %.3f, backgroundLoad %.2f\n",
                info.preset.loadFrac, info.preset.l1dMissRate,
                info.preset.llcDataMissFrac,
                info.preset.backgroundLoad);
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 1)
        usageError("replay needs <file>");
    const std::string path = argv[0];

    std::string scheme = "shotgun", name;
    std::uint64_t measure = 5000000, warmup = 2000000;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(argv[i], "--scheme") == 0) {
            const char *value = next();
            if (value == nullptr)
                usageError("--scheme: expected a scheme name");
            scheme = value;
        } else if (std::strcmp(argv[i], "--instructions") == 0) {
            measure = parseU64Arg("--instructions", next());
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            warmup = parseU64Arg("--warmup", next());
        } else if (std::strcmp(argv[i], "--name") == 0) {
            const char *value = next();
            if (value == nullptr)
                usageError("--name: expected a workload name");
            name = value;
        } else {
            usageError((std::string("unknown replay option '") +
                        argv[i] + "'")
                           .c_str());
        }
    }

    WorkloadPreset preset =
        presetByName("trace:" + path + (name.empty() ? "" : ":" + name));
    SimConfig config =
        SimConfig::make(preset, schemeTypeByName(scheme));
    config.warmupInstructions = warmup;
    config.measureInstructions = measure;
    const SimResult result = runSimulation(config);

    TextTable table("replay of " + path);
    table.row().cell("Workload").cell("Scheme").cell("IPC")
        .cell("Cycles").cell("L1-I MPKI").cell("BTB MPKI")
        .cell("Mispred/KI").cell("PF acc");
    table.row().cell(result.workload).cell(result.scheme)
        .cell(result.ipc, 3)
        .cell(static_cast<double>(result.cycles), 0)
        .cell(result.l1iMPKI, 1).cell(result.btbMPKI, 1)
        .cell(result.mispredictsPerKI, 1)
        .percentCell(result.prefetchAccuracy);
    table.print(std::cout);
    return 0;
}

int
cmdIndex(int argc, char **argv)
{
    if (argc < 1)
        usageError("index needs <file>");
    const std::string path = argv[0];

    std::uint64_t every = 65536;
    bool show = false;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(argv[i], "--every") == 0) {
            every = parseU64Arg("--every", next());
            if (every == 0)
                usageError("--every: expected a nonzero interval");
        } else if (std::strcmp(argv[i], "--show") == 0) {
            show = true;
        } else {
            usageError((std::string("unknown index option '") +
                        argv[i] + "'")
                           .c_str());
        }
    }

    const std::string idx_path = traceIndexPath(path);
    if (show) {
        const TraceInfo info = readTraceInfo(path);
        TraceIndex index;
        std::string error;
        if (!tryReadTraceIndex(idx_path, info, index, error)) {
            std::fprintf(stderr, "shotgun-trace: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("index file     : %s\n", idx_path.c_str());
        std::printf("trace          : %s (%" PRIu64 " records, %"
                    PRIu64 " instructions, seed %" PRIu64 ")\n",
                    path.c_str(), index.records, index.instructions,
                    index.traceSeed);
        std::printf("checkpoints    : %zu (every %" PRIu64
                    " records)\n",
                    index.entries.size(), index.interval);
        for (const TraceIndexEntry &entry : index.entries) {
            std::printf("  record %-12" PRIu64 " instr %-14" PRIu64
                        " offset %" PRIu64 "\n",
                        entry.record, entry.instructions,
                        entry.byteOffset);
        }
        return 0;
    }

    const TraceIndex index = buildTraceIndex(path, every);
    writeTraceIndex(idx_path, index);
    std::printf("indexed %" PRIu64 " records (%" PRIu64
                " instructions) of %s: %zu checkpoints every %"
                PRIu64 " records -> %s\n",
                index.records, index.instructions, path.c_str(),
                index.entries.size(), every, idx_path.c_str());
    std::printf("windowed replays of this trace now seek instead of "
                "reading the skipped prefix\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int exit_code = 0;
    if (cli::handleStandardFlags(argc, argv, "shotgun-trace", kUsage,
                                 exit_code))
        return exit_code;
    if (argc < 2)
        usageError("expected a subcommand");
    const std::string command = argv[1];
    if (command == "record")
        return cmdRecord(argc - 2, argv + 2);
    if (command == "info")
        return cmdInfo(argc - 2, argv + 2);
    if (command == "replay")
        return cmdReplay(argc - 2, argv + 2);
    if (command == "index")
        return cmdIndex(argc - 2, argv + 2);
    usageError((std::string("unknown subcommand '") + command + "'")
                   .c_str());
}
