/**
 * @file
 * shotgun-submit: client of the shotgun-serve simulation service.
 * Builds an experiment grid from the same declarative pieces the
 * benches use (workload presets / trace:<path>[:name] specs, scheme
 * names, run lengths), submits it to one server -- or shards it
 * across several with `--workers` -- streams progress, and writes
 * the same console table and JSON/CSV files an in-process run
 * produces. With `--local` the identical grid runs in-process, which
 * is how the smoke script asserts the service path is byte-identical
 * to the runner.
 *
 *   shotgun-submit --server unix:/run/shotgun.sock --workload nutch
 *   shotgun-submit --workers hostA:7401,hostB:7401 --workload all \
 *       --schemes baseline,fdip,boomerang,confluence,shotgun \
 *       --out results/speedup
 *   shotgun-submit --server hostA:7401 --status
 *   shotgun-submit --server hostA:7401 --shutdown
 *
 * With `--coordinator` the same grid goes to a shotgun-coord fleet
 * control plane instead of a single server: the coordinator spreads
 * the points over its registered workers and streams results back in
 * grid order, so the output stays byte-identical. `--fleet-status`
 * renders the coordinator's per-worker table (throughput, queue
 * depth, heartbeat age, cache hit rate).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "obs/trace.hh"
#include "obs/uarch.hh"
#include "service/codec.hh"
#include "runner/experiment.hh"
#include "runner/grid_scheduler.hh"
#include "runner/result_sink.hh"
#include "service/client.hh"
#include "window/window_plan.hh"
#include "window/windowed_runner.hh"

using namespace shotgun;

namespace
{

const char *kUsage =
    "usage:\n"
    "  shotgun-submit --server ENDPOINT | --workers EP1,EP2,...\n"
    "                 | --coordinator ENDPOINT\n"
    "                 [grid options] [output options]\n"
    "  shotgun-submit --server ENDPOINT --status|--ping|--shutdown\n"
    "  shotgun-submit --server ENDPOINT --cancel JOB\n"
    "  shotgun-submit --coordinator ENDPOINT --fleet-status\n"
    "  shotgun-submit --local [grid options] [output options]\n"
    "\n"
    "Grid options (mirror the bench command lines):\n"
    "  --experiment NAME    sweep name for tables/files (default\n"
    "                       'service_submit')\n"
    "  --workload LIST      comma-separated preset names, 'all', or\n"
    "                       trace:<path>[:name] specs; repeatable\n"
    "                       (default: all six presets)\n"
    "  --schemes LIST       schemes beside the always-included\n"
    "                       baseline (default: shotgun)\n"
    "  --instructions N     measured instructions (default 5000000)\n"
    "  --warmup N           warm-up instructions (default 2000000)\n"
    "  --quick              1M measured / 0.5M warm-up\n"
    "  --seed N             generator seed (default 1)\n"
    "  --jobs N             per-job worker threads on the server\n"
    "                       (or in-process with --local); 0 = server\n"
    "                       default\n"
    "\n"
    "Fleet: --coordinator submits the grid to a shotgun-coord\n"
    "control plane, which spreads the points over its registered\n"
    "shotgun-serve workers (work stealing, longest-measured-first)\n"
    "and requeues the in-flight points of a worker that dies or\n"
    "misses heartbeats. Results stream back in grid order, so the\n"
    "output is byte-identical to --local.\n"
    "\n"
    "  --priority N         weighted fair share against concurrent\n"
    "                       jobs: a priority-2 job is dispatched\n"
    "                       twice as often as a priority-1 job\n"
    "                       (default 1; also honoured by --server)\n"
    "  --fleet-status       render the coordinator's fleet table:\n"
    "                       per-worker throughput, queue depth,\n"
    "                       heartbeat age and cache hit rate\n"
    "\n"
    "Sharding: --workers submits experiment i to worker i mod W and\n"
    "stitches results back by index, so the output is byte-identical\n"
    "to a single-server or --local run of the same grid. A worker\n"
    "that dies mid-grid has its undelivered points redistributed\n"
    "across the surviving workers (delivered results are kept); the\n"
    "submit fails only when every worker is dead.\n"
    "\n"
    "  --window-shards N    split every experiment into N contiguous\n"
    "                       measurement windows distributed across\n"
    "                       the workers (finer-grained work units\n"
    "                       than per-config sharding) and stitch the\n"
    "                       windows back into results numerically\n"
    "                       identical to monolithic runs; dead-worker\n"
    "                       recovery re-simulates lost windows on\n"
    "                       survivors. Each window re-simulates its\n"
    "                       prefix as warm-up (the price of exact\n"
    "                       stitching), so this buys distribution\n"
    "                       granularity and fault tolerance, not a\n"
    "                       shorter critical path; the sampled-window\n"
    "                       API (src/window/) is the latency lever.\n"
    "                       Works with --local too (the windows run\n"
    "                       on the in-process pool).\n"
    "\n"
    "Transport options:\n"
    "  --timeout SECONDS    fail when the server sends nothing for\n"
    "                       this long (default 600; 0 waits forever)\n"
    "\n"
    "Output options:\n"
    "  --out BASE           write BASE.json and BASE.csv\n"
    "  --trace-out FILE     write a Chrome trace-event JSON of the\n"
    "                       run (Perfetto-loadable): per-point\n"
    "                       queued/dispatched/decode/warmup/restore/\n"
    "                       measure spans, one cross-process timeline\n"
    "                       when the server or fleet echoes the trace\n"
    "                       id; rows gain a JSON-only \"timing\"\n"
    "                       object (the CSV is unchanged)\n"
    "  --uarch-report FILE  enable the deterministic uarch probes\n"
    "                       (cycle-exact stall attribution, prefetch\n"
    "                       lifecycle, miss-site hotspots) on every\n"
    "                       grid point and write the aggregated JSON\n"
    "                       report to FILE; with --trace-out the\n"
    "                       trace gains per-point stall counter\n"
    "                       tracks. Simulation counters are bitwise\n"
    "                       identical with probes on or off; probed\n"
    "                       configs fingerprint separately\n"
    "  --no-progress        no per-point progress lines on stderr\n";

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "shotgun-submit: %s\n%s", message.c_str(),
                 kUsage);
    std::exit(cli::kUsageExitCode);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const auto comma = text.find(',', start);
        const auto end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

struct Options
{
    std::vector<std::string> endpoints;
    bool local = false;

    enum class Action
    {
        Submit,
        Status,
        FleetStatus,
        Ping,
        Shutdown,
        Cancel,
    };
    Action action = Action::Submit;
    std::uint64_t cancelJob = 0;

    std::string experiment = "service_submit";
    std::vector<std::string> workloads;
    std::vector<std::string> schemes{"shotgun"};
    std::uint64_t measure = 5000000;
    std::uint64_t warmup = 2000000;
    std::uint64_t seed = 1;
    std::uint64_t jobs = 0;
    std::uint64_t priority = 1;
    std::uint64_t windowShards = 0; ///< 0 = monolithic experiments.
    std::uint64_t timeoutSeconds = service::kDefaultTimeoutSeconds;

    std::string outBase;
    std::string traceOut;
    std::string uarchReport;
    bool showProgress = true;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usageError(std::string(flag) + ": missing value");
            return argv[++i];
        };
        auto nextU64 = [&](const char *flag) {
            std::uint64_t value = 0;
            const char *text = next(flag);
            if (!parseU64(text, value))
                usageError(std::string(flag) +
                           ": expected a decimal count, got '" + text +
                           "'");
            return value;
        };
        const char *arg = argv[i];
        if (std::strcmp(arg, "--server") == 0) {
            opts.endpoints = {next("--server")};
        } else if (std::strcmp(arg, "--workers") == 0) {
            opts.endpoints = splitCommas(next("--workers"));
            if (opts.endpoints.empty())
                usageError("--workers: expected EP1,EP2,...");
        } else if (std::strcmp(arg, "--coordinator") == 0) {
            // The coordinator speaks the same client protocol as a
            // single server; it fans the grid out to its fleet.
            opts.endpoints = {next("--coordinator")};
        } else if (std::strcmp(arg, "--local") == 0) {
            opts.local = true;
        } else if (std::strcmp(arg, "--status") == 0) {
            opts.action = Options::Action::Status;
        } else if (std::strcmp(arg, "--fleet-status") == 0) {
            opts.action = Options::Action::FleetStatus;
        } else if (std::strcmp(arg, "--ping") == 0) {
            opts.action = Options::Action::Ping;
        } else if (std::strcmp(arg, "--shutdown") == 0) {
            opts.action = Options::Action::Shutdown;
        } else if (std::strcmp(arg, "--cancel") == 0) {
            opts.action = Options::Action::Cancel;
            opts.cancelJob = nextU64("--cancel");
        } else if (std::strcmp(arg, "--experiment") == 0) {
            opts.experiment = next("--experiment");
        } else if (std::strcmp(arg, "--workload") == 0) {
            // "all" expands in place so repeated --workload flags
            // compose instead of silently replacing one another.
            for (auto &name : splitCommas(next("--workload"))) {
                if (name == "all") {
                    for (const auto &preset : allPresets())
                        opts.workloads.push_back(preset.name);
                } else {
                    opts.workloads.push_back(name);
                }
            }
        } else if (std::strcmp(arg, "--schemes") == 0) {
            opts.schemes = splitCommas(next("--schemes"));
            if (opts.schemes.empty())
                usageError("--schemes: expected a scheme list");
        } else if (std::strcmp(arg, "--instructions") == 0) {
            opts.measure = nextU64("--instructions");
        } else if (std::strcmp(arg, "--warmup") == 0) {
            opts.warmup = nextU64("--warmup");
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.measure = 1000000;
            opts.warmup = 500000;
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.seed = nextU64("--seed");
        } else if (std::strcmp(arg, "--jobs") == 0) {
            opts.jobs = nextU64("--jobs");
        } else if (std::strcmp(arg, "--priority") == 0) {
            opts.priority = nextU64("--priority");
            if (opts.priority == 0 || opts.priority > 1000000)
                usageError("--priority: expected a weight in "
                           "[1, 1000000]");
        } else if (std::strcmp(arg, "--window-shards") == 0) {
            opts.windowShards = nextU64("--window-shards");
            if (opts.windowShards == 0 || opts.windowShards > 65536)
                usageError("--window-shards: expected a window count "
                           "in [1, 65536]");
        } else if (std::strcmp(arg, "--timeout") == 0) {
            opts.timeoutSeconds = nextU64("--timeout");
            if (opts.timeoutSeconds > 86400)
                usageError("--timeout: expected seconds in "
                           "[0, 86400]");
        } else if (std::strcmp(arg, "--out") == 0) {
            opts.outBase = next("--out");
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            opts.traceOut = next("--trace-out");
        } else if (std::strcmp(arg, "--uarch-report") == 0) {
            opts.uarchReport = next("--uarch-report");
        } else if (std::strcmp(arg, "--no-progress") == 0) {
            opts.showProgress = false;
        } else {
            usageError(std::string("unknown option '") + arg + "'");
        }
    }

    if (opts.local && !opts.endpoints.empty())
        usageError("--local excludes --server/--workers");
    if (!opts.local && opts.endpoints.empty())
        usageError("one of --server, --workers or --local is required");
    if (opts.action != Options::Action::Submit &&
        (opts.local || opts.endpoints.size() != 1))
        usageError("--status/--fleet-status/--ping/--shutdown/"
                   "--cancel need exactly one --server or "
                   "--coordinator");
    return opts;
}

/** The grid: per workload, the baseline plus every named scheme. */
runner::ExperimentSet
buildGrid(const Options &opts)
{
    std::vector<WorkloadPreset> presets;
    if (opts.workloads.empty()) {
        presets = allPresets();
    } else {
        for (const auto &name : opts.workloads)
            presets.push_back(presetByName(name));
    }

    runner::ExperimentSet set;
    for (const WorkloadPreset &preset : presets) {
        set.addBaseline(preset, opts.warmup, opts.measure, opts.seed);
        for (const std::string &scheme : opts.schemes) {
            const SchemeType type = schemeTypeByName(scheme);
            if (type == SchemeType::Baseline)
                continue; // Always present via addBaseline.
            SimConfig config = SimConfig::make(preset, type);
            config.warmupInstructions = opts.warmup;
            config.measureInstructions = opts.measure;
            config.traceSeed = opts.seed;
            set.add(preset, schemeTypeName(type), std::move(config));
        }
    }
    return set;
}

/**
 * The aggregated `--uarch-report` document: one entry per grid point
 * (breakdown plus its conservation check against the point's cycle
 * count) and a mergeUarch() total. Returns false on I/O failure.
 */
bool
writeUarchReport(const std::string &path, const std::string &experiment,
                 const std::vector<runner::Experiment> &grid,
                 const std::vector<SimResult> &results)
{
    json::Value rows = json::Value::array();
    obs::UarchBreakdown total;
    total.enabled = true;
    bool conserved = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SimResult &r = results[i];
        const bool ok = r.uarch.conserves(r.cycles);
        conserved = conserved && ok;
        json::Value row = json::Value::object();
        row.set("workload", json::Value::string(grid[i].workload));
        row.set("label", json::Value::string(grid[i].label));
        row.set("cycles", json::Value::number(r.cycles));
        row.set("conserves", json::Value::boolean(ok));
        row.set("uarch", service::encodeUarchBreakdown(r.uarch));
        rows.push(std::move(row));
        obs::mergeUarch(total, r.uarch);
    }
    json::Value doc = json::Value::object();
    doc.set("experiment", json::Value::string(experiment));
    doc.set("conserves", json::Value::boolean(conserved));
    doc.set("rows", std::move(rows));
    doc.set("total", service::encodeUarchBreakdown(total));
    std::ofstream out(path);
    if (!out)
        return false;
    out << doc.dump() << "\n";
    return out.good();
}

int
runSubmit(const Options &opts)
{
    runner::ExperimentSet set = buildGrid(opts);
    if (!opts.uarchReport.empty())
        set.enableUarchProbes();

    // Tracing is strictly additive: it observes wall-clock around
    // the run and never feeds anything back into a simulation, so
    // results (and the CSV) are bitwise identical with or without
    // --trace-out.
    const bool tracing = !opts.traceOut.empty();
    // Counter-track timebase: grid-order samples are laid out from
    // here (1 ms apart), matching the span timestamps' wall-clock µs.
    const std::uint64_t trace_t0 = tracing ? obs::wallClockUs() : 0;
    std::vector<obs::PointTiming> timings(set.size());
    obs::TraceContext trace_ctx;
    std::unique_ptr<obs::ScopedTraceContext> trace_scope;
    std::unique_ptr<obs::Span> root_span;
    if (tracing) {
        obs::tracer().setProcessName("submit");
        obs::tracer().enable(obs::newTraceId());
        trace_ctx.traceId = obs::tracer().defaultTraceId();
        trace_ctx.lane = "main";
        trace_scope.reset(new obs::ScopedTraceContext(&trace_ctx));
        root_span.reset(new obs::Span("submit", "client"));
    }

    service::SubmitRequest request;
    request.experiment = opts.experiment;
    request.jobs = opts.jobs;
    request.priority = opts.priority;
    request.grid = set.experiments();
    if (tracing) {
        request.traceId = obs::tracer().defaultTraceId();
        request.parentSpan = root_span->id();
    }

    const unsigned window_shards =
        static_cast<unsigned>(opts.windowShards);
    std::vector<SimResult> results;
    if (opts.local && window_shards == 0) {
        runner::RunnerOptions ropts;
        ropts.jobs = static_cast<unsigned>(opts.jobs);
        ropts.progress = opts.showProgress ? &std::cerr : nullptr;
        if (tracing) {
            // Spans land in the tracer as they close in-process;
            // only the per-point timing needs harvesting for rows.
            ropts.onObservation =
                [&timings](std::size_t index,
                           const obs::PointTiming &timing,
                           const std::vector<obs::SpanRecord> &) {
                    timings[index] = timing;
                };
        }
        results = runner::ExperimentRunner(ropts).run(set);
    } else if (opts.local) {
        // Windowed in-process: each experiment's windows run
        // concurrently on one pool; experiments run in sequence.
        runner::GridScheduler::Options sopts;
        if (opts.jobs != 0)
            sopts.workers = static_cast<unsigned>(opts.jobs);
        runner::GridScheduler scheduler(sopts);
        for (const runner::Experiment &exp : set.experiments()) {
            const window::WindowPlan plan =
                window::contiguousPlan(exp.config, window_shards);
            window::WindowedOutcome outcome =
                window::runWindowedExperiment(exp, plan, scheduler);
            if (opts.showProgress)
                std::fprintf(stderr, "[%zu/%zu] %s/%s stitched from "
                             "%u windows\n",
                             results.size() + 1, set.size(),
                             exp.workload.c_str(), exp.label.c_str(),
                             window_shards);
            results.push_back(std::move(outcome.stitched));
        }
    } else {
        service::ShardedOptions shard_opts;
        shard_opts.onProgress = [&](std::size_t done,
                                    std::size_t total) {
            if (opts.showProgress)
                std::fprintf(stderr, "[%zu/%zu] points complete\n",
                             done, total);
        };
        shard_opts.timeoutSeconds =
            static_cast<unsigned>(opts.timeoutSeconds);
        if (tracing) {
            // Remote spans arrive inside result frames; fold them
            // into the local tracer so one file holds the whole
            // cross-process timeline. onEvent calls are serialized.
            shard_opts.onEvent =
                [&timings, window_shards](
                    std::size_t grid_index,
                    const service::ResultEvent &event) {
                    if (window_shards == 0 && event.hasTiming &&
                        grid_index < timings.size())
                        timings[grid_index] = event.timing;
                    if (!event.spans.empty())
                        obs::tracer().record(event.spans);
                };
        }
        std::vector<service::ShardOutcome> outcomes;
        shard_opts.outcomes = &outcomes;
        try {
            results =
                window_shards == 0
                    ? service::submitSharded(opts.endpoints, request,
                                             shard_opts)
                    : service::submitWindowSharded(opts.endpoints,
                                                   request,
                                                   window_shards,
                                                   shard_opts);
        } catch (const service::JobFailedError &) {
            // The job itself is broken (a grid point whose
            // simulation fails deterministically); the fleet is
            // fine. Let the generic handler report it.
            throw;
        } catch (const std::exception &e) {
            // Transport failure with no survivors: print the
            // per-worker ledger so the operator can see who died
            // when, then fail with an unambiguous summary.
            // Window sharding expands each experiment into
            // window_shards transport-level points.
            const std::size_t total_points =
                request.grid.size() *
                (window_shards == 0 ? 1 : window_shards);
            std::size_t delivered = 0;
            std::size_t dead = 0;
            for (const service::ShardOutcome &outcome : outcomes) {
                delivered += outcome.delivered;
                if (!outcome.error.empty())
                    ++dead;
                std::fprintf(
                    stderr,
                    "worker %s: %zu assigned, %zu delivered%s%s\n",
                    outcome.endpoint.c_str(), outcome.assigned,
                    outcome.delivered,
                    outcome.error.empty() ? "" : "; died: ",
                    outcome.error.c_str());
            }
            if (dead > 0 && dead == outcomes.size())
                std::fprintf(stderr,
                             "shotgun-submit: all %zu worker%s died; "
                             "grid incomplete (%zu/%zu points "
                             "delivered): %s\n",
                             dead, dead == 1 ? "" : "s", delivered,
                             total_points, e.what());
            else
                std::fprintf(stderr,
                             "shotgun-submit: submit failed after "
                             "%zu/%zu points: %s\n",
                             delivered, total_points, e.what());
            return 1;
        }
        for (const service::ShardOutcome &outcome : outcomes) {
            if (outcome.error.empty())
                continue;
            std::fprintf(stderr,
                         "warning: worker %s died after %zu points "
                         "(%s); %zu points redistributed to "
                         "survivors\n",
                         outcome.endpoint.c_str(), outcome.delivered,
                         outcome.error.c_str(), outcome.retried);
        }
    }

    // Rows, table and files go through the exact machinery
    // ExperimentRunner::run(set, sink) uses, so remote === local
    // results imply byte-identical output artifacts. (Stitched rows
    // carry a JSON-only "windows" marker; the CSV stays comparable.)
    runner::ResultSink sink(opts.experiment);
    runner::appendResultRows(set, results, sink, opts.windowShards,
                             tracing ? &timings : nullptr);
    sink.printTable(std::cout);
    if (!opts.outBase.empty()) {
        if (!sink.writeFiles(opts.outBase))
            return 1;
        std::fprintf(stderr, "results: %s.json %s.csv\n",
                     opts.outBase.c_str(), opts.outBase.c_str());
    }
    if (!opts.uarchReport.empty()) {
        if (!writeUarchReport(opts.uarchReport, opts.experiment,
                              set.experiments(), results)) {
            warn("cannot write uarch report to '%s'",
                 opts.uarchReport.c_str());
            return 1;
        }
        std::fprintf(stderr, "uarch report: %s\n",
                     opts.uarchReport.c_str());
    }
    if (tracing) {
        root_span.reset(); // Close the run-wide root span.
        trace_scope.reset();
        // With probes on, the trace gains a stall-attribution counter
        // track: one sample per grid point, laid out in grid order,
        // so Perfetto renders the stall mix across the sweep as a
        // stacked chart alongside the span lanes.
        std::vector<obs::CounterSample> counters;
        if (!opts.uarchReport.empty()) {
            for (std::size_t i = 0; i < results.size(); ++i) {
                const obs::UarchBreakdown &u = results[i].uarch;
                if (!u.enabled)
                    continue;
                obs::CounterSample sample;
                sample.process = "submit";
                sample.name = "uarch stall cycles";
                sample.ts = trace_t0 + i * 1000;
                sample.values = {
                    {"icache_miss", u.stallICacheMiss},
                    {"btb_miss", u.stallBTBMiss},
                    {"redirect", u.stallRedirect},
                    {"ftq_empty", u.stallFTQEmpty},
                    {"backend_pressure", u.stallBackendPressure},
                    {"prefetch_in_flight", u.stallPrefetchInFlight},
                };
                counters.push_back(std::move(sample));
            }
        }
        if (!obs::writeChromeTrace(opts.traceOut,
                                   obs::tracer().snapshot(),
                                   counters)) {
            warn("cannot write trace to '%s'",
                 opts.traceOut.c_str());
            return 1;
        }
        std::fprintf(stderr, "trace: %s\n", opts.traceOut.c_str());
    }
    return 0;
}

/** Percent string for a hit/miss pair; "-" before any lookup. */
std::string
hitRate(std::uint64_t hits, std::uint64_t misses)
{
    const std::uint64_t lookups = hits + misses;
    if (lookups == 0)
        return "-";
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(lookups));
    return buffer;
}

/**
 * Renders a coordinator status frame's fleet table. The raw frame is
 * available via --status; this is the human view of the same data.
 */
int
runFleetStatus(const Options &opts)
{
    service::ServiceClient client(
        opts.endpoints[0],
        static_cast<unsigned>(opts.timeoutSeconds));
    const json::Value status = client.status();
    const json::Value *fleet = status.find("fleet");
    if (fleet == nullptr)
        fatal("%s is a plain server, not a coordinator (its status "
              "frame has no `fleet` member); point --coordinator at "
              "a shotgun-coord endpoint",
              opts.endpoints[0].c_str());

    const json::Value &server = status.at("server");
    const json::Value &cache = server.at("cache");
    std::printf("fleet @ %s\n", opts.endpoints[0].c_str());
    std::printf("  queue depth %llu, in flight %llu, parked slots "
                "%llu/%llu\n",
                static_cast<unsigned long long>(
                    fleet->at("queue_depth").asU64()),
                static_cast<unsigned long long>(
                    fleet->at("inflight").asU64()),
                static_cast<unsigned long long>(
                    fleet->at("parked_slots").asU64()),
                static_cast<unsigned long long>(
                    fleet->at("total_slots").asU64()));
    std::printf("  coordinator cache: %llu entries, %s hit rate, "
                "%llu disk hits\n",
                static_cast<unsigned long long>(
                    cache.at("entries").asU64()),
                hitRate(cache.at("hits").asU64(),
                        cache.at("misses").asU64())
                    .c_str(),
                static_cast<unsigned long long>(
                    cache.at("backend_hits").asU64()));
    // Coordinators predating warmed-state checkpoints omit these.
    if (const json::Value *cp_hits =
            fleet->find("checkpoint_hits")) {
        const std::uint64_t hits = cp_hits->asU64();
        const std::uint64_t misses =
            fleet->at("checkpoint_misses").asU64();
        std::printf("  warmup checkpoints: %llu restored, %llu "
                    "simulated, %s reuse\n",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses),
                    hitRate(hits, misses).c_str());
    }

    // Sorted by worker name (ties by id): the frame lists workers in
    // registration order, which varies run to run; sorting makes the
    // table deterministic for a given fleet.
    std::vector<service::WorkerStatus> workers;
    for (const json::Value &row : fleet->at("workers").items())
        workers.push_back(service::decodeWorkerStatus(row));
    std::sort(workers.begin(), workers.end(),
              [](const service::WorkerStatus &a,
                 const service::WorkerStatus &b) {
                  return a.name != b.name ? a.name < b.name
                                          : a.id < b.id;
              });
    std::printf("\n  %-4s %-16s %5s %8s %9s %9s %9s %9s %9s\n", "id",
                "name", "slots", "inflight", "done", "hb-age",
                "pts/s", "cache-hit", "ckpt-hit");
    for (const service::WorkerStatus &worker : workers) {
        char age[24];
        std::snprintf(age, sizeof(age), "%.1fs",
                      static_cast<double>(worker.heartbeatAgeMs) /
                          1000.0);
        std::printf("  %-4llu %-16s %5llu %8llu %9llu %9s %9.2f "
                    "%9s %9s\n",
                    static_cast<unsigned long long>(worker.id),
                    worker.name.c_str(),
                    static_cast<unsigned long long>(worker.slots),
                    static_cast<unsigned long long>(worker.inflight),
                    static_cast<unsigned long long>(worker.completed),
                    age, worker.throughput,
                    hitRate(worker.cacheHits, worker.cacheMisses)
                        .c_str(),
                    hitRate(worker.checkpointHits,
                            worker.checkpointMisses)
                        .c_str());
    }
    if (workers.empty())
        std::printf("  (no workers registered)\n");

    // Per-phase wall-clock breakdown from the workers' heartbeat
    // phase counters (always on; no tracing needed). Workers
    // predating the counters report all zeros and are skipped; the
    // section appears once any worker has simulated something.
    bool any_phase = false;
    for (const service::WorkerStatus &worker : workers) {
        if (worker.phaseDecodeUs != 0 || worker.phaseWarmupUs != 0 ||
            worker.phaseRestoreUs != 0 ||
            worker.phaseMeasureUs != 0)
            any_phase = true;
    }
    if (any_phase) {
        auto seconds = [](std::uint64_t us) {
            return static_cast<double>(us) / 1e6;
        };
        // Percentiles are bucket-resolution estimates of per-point
        // measure latency (optional frame member; "-" from workers
        // that have not finished a point or predate the field).
        auto pct = [](std::uint64_t us) {
            if (us == 0)
                return std::string("-");
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%.0fms",
                          static_cast<double>(us) / 1000.0);
            return std::string(buf);
        };
        std::printf("\n  simulation time by phase (s)\n");
        std::printf("  %-16s %9s %9s %9s %9s %8s %7s %7s %7s\n",
                    "name", "decode", "warmup", "restore", "measure",
                    "points", "p50", "p95", "p99");
        for (const service::WorkerStatus &worker : workers) {
            std::printf(
                "  %-16s %9.2f %9.2f %9.2f %9.2f %8llu %7s %7s %7s\n",
                worker.name.c_str(), seconds(worker.phaseDecodeUs),
                seconds(worker.phaseWarmupUs),
                seconds(worker.phaseRestoreUs),
                seconds(worker.phaseMeasureUs),
                static_cast<unsigned long long>(worker.phasePoints),
                pct(worker.measureP50Us).c_str(),
                pct(worker.measureP95Us).c_str(),
                pct(worker.measureP99Us).c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int exit_code = 0;
    if (cli::handleStandardFlags(argc, argv, "shotgun-submit", kUsage,
                                 exit_code))
        return exit_code;

    const Options opts = parseOptions(argc, argv);
    try {
        switch (opts.action) {
          case Options::Action::Submit:
            return runSubmit(opts);
          case Options::Action::Status: {
            service::ServiceClient client(
                opts.endpoints[0],
                static_cast<unsigned>(opts.timeoutSeconds));
            std::cout << client.status().dump() << "\n";
            return 0;
          }
          case Options::Action::FleetStatus:
            return runFleetStatus(opts);
          case Options::Action::Ping: {
            service::ServiceClient client(
                opts.endpoints[0],
                static_cast<unsigned>(opts.timeoutSeconds));
            if (!client.ping())
                fatal("no pong from %s", opts.endpoints[0].c_str());
            std::printf("pong from %s\n", opts.endpoints[0].c_str());
            return 0;
          }
          case Options::Action::Shutdown: {
            service::ServiceClient client(
                opts.endpoints[0],
                static_cast<unsigned>(opts.timeoutSeconds));
            client.shutdownServer();
            std::printf("server %s shutting down\n",
                        opts.endpoints[0].c_str());
            return 0;
          }
          case Options::Action::Cancel: {
            service::ServiceClient client(
                opts.endpoints[0],
                static_cast<unsigned>(opts.timeoutSeconds));
            client.cancel(opts.cancelJob);
            std::printf("job %llu cancelling\n",
                        static_cast<unsigned long long>(
                            opts.cancelJob));
            return 0;
          }
        }
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return 0;
}
