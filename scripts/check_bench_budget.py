#!/usr/bin/env python3
"""Guard simulator throughput against regressions.

Compares a fresh ``bench_sim_throughput`` run against the committed
baseline (``BENCH_sim_throughput.json``) and exits non-zero when any
(workload, scheme) row regressed. This covers the per-scheme rows
and the ``batched-grid`` row alike: the latter budgets the one-pass
grid pipeline (shared trace decode + warmed checkpoints + cohort
scheduling), whose effective instr/sec must stay ahead of what the
per-scheme rows imply for six separate runs. For every row:

  * ``measured_instructions`` / ``measured_cycles`` must match the
    baseline exactly -- the simulation itself is deterministic, so any
    drift here is a correctness bug, not noise;
  * ``instructions_per_second`` must be within ``--budget`` percent
    (default 15) of the baseline row.

A baseline row missing from the measured output fails the check when
the row is budget-enforced (dropping a bench case must not silently
drop its budget) and warns when the row is tracked-only
(``budget_enforced: false``); measured rows absent from the baseline
warn that the baseline wants regenerating.

The throughput check is wall-clock and therefore machine-sensitive:
the committed baseline is meaningful on hardware comparable to the
machine that produced it. Regenerate it alongside intentional perf
changes with

    build/bench_sim_throughput --out BENCH_sim_throughput.json

Usage:
    scripts/check_bench_budget.py --baseline BENCH_sim_throughput.json \
        --measured build/bench_fresh.json [--budget 15]
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("experiment") != "sim_throughput":
        sys.exit(f"{path}: not a sim_throughput result file")
    rows = {}
    for row in doc["rows"]:
        rows[(row["workload"], row["scheme"])] = row
    return rows


def main():
    parser = argparse.ArgumentParser(
        description="fail on simulator throughput regression")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_sim_throughput.json")
    parser.add_argument("--measured",
                        help="fresh bench_sim_throughput output "
                             "(required unless --list-rows)")
    parser.add_argument("--budget", type=float, default=15.0,
                        help="allowed instr/sec regression, percent "
                             "(default 15)")
    parser.add_argument("--list-rows", action="store_true",
                        help="validate the baseline schema and print "
                             "its rows (workload/scheme, enforced?) "
                             "without measuring anything; --measured "
                             "is not required")
    args = parser.parse_args()

    if args.list_rows:
        baseline = load_rows(args.baseline)
        bad = 0
        for (workload, scheme), row in sorted(baseline.items()):
            missing = [f for f in ("measured_instructions",
                                   "measured_cycles",
                                   "instructions_per_second")
                       if f not in row]
            enforced = row.get("budget_enforced", True)
            tag = "enforced" if enforced else "tracked"
            if missing:
                bad += 1
                tag += ", MISSING: " + ", ".join(missing)
            print(f"{workload}/{scheme}: {tag}")
        if bad:
            print(f"\n{args.baseline}: {bad} malformed row(s)",
                  file=sys.stderr)
            return 1
        print(f"{len(baseline)} row(s) OK")
        return 0

    if args.measured is None:
        parser.error("--measured is required unless --list-rows")

    baseline = load_rows(args.baseline)
    measured = load_rows(args.measured)

    failures = []
    warnings = []
    for key, base in sorted(baseline.items()):
        workload, scheme = key
        fresh = measured.get(key)
        if fresh is None:
            # A baseline row the fresh run did not produce: a silent
            # pass here would let an enforced budget evaporate by
            # dropping its bench case. Tracked (budget_enforced:
            # false) rows only warn -- their absence loses trajectory
            # data, not a guarantee.
            if base.get("budget_enforced", True):
                failures.append(f"{workload}/{scheme}: enforced "
                                f"baseline row missing from "
                                f"{args.measured}")
            else:
                warnings.append(f"{workload}/{scheme}: tracked row "
                                f"missing from {args.measured}")
            continue

        for field in ("measured_instructions", "measured_cycles"):
            if fresh[field] != base[field]:
                failures.append(
                    f"{workload}/{scheme}: {field} drifted "
                    f"({base[field]} -> {fresh[field]}); the "
                    f"simulation is deterministic, so this is a "
                    f"correctness change, not noise")

        base_ips = base["instructions_per_second"]
        fresh_ips = fresh["instructions_per_second"]
        floor = base_ips * (1.0 - args.budget / 100.0)
        delta = (fresh_ips - base_ips) / base_ips * 100.0
        # Rows the bench marks budget_enforced=false (the
        # tracing-enabled row) are tracked for the trajectory but
        # never fail the check: their cost is the thing being
        # observed, not a budget.
        enforced = base.get("budget_enforced", True)
        if not enforced:
            status = "tracked (not budget-enforced)"
        elif fresh_ips >= floor:
            status = "ok"
        else:
            status = "REGRESSED"
        print(f"{workload}/{scheme}: {fresh_ips / 1e6:.2f} Minstr/s "
              f"vs baseline {base_ips / 1e6:.2f} ({delta:+.1f}%, "
              f"budget -{args.budget:.0f}%): {status}")
        if enforced and fresh_ips < floor:
            failures.append(
                f"{workload}/{scheme}: instructions/sec regressed: "
                f"baseline {base_ips:.0f} instr/s "
                f"({base_ips / 1e6:.2f} Minstr/s), current "
                f"{fresh_ips:.0f} instr/s "
                f"({fresh_ips / 1e6:.2f} Minstr/s), "
                f"delta {delta:+.1f}% exceeds the "
                f"-{args.budget:.0f}% budget")

    # Rows the fresh run measured that the baseline does not know:
    # fine (a new bench case lands before its baseline), but worth a
    # note so the baseline gets regenerated.
    for key in sorted(set(measured) - set(baseline)):
        warnings.append(f"{key[0]}/{key[1]}: measured but not in "
                        f"{args.baseline}; regenerate the baseline "
                        f"to start tracking it")

    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if failures:
        print("\nbench budget check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench budget check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
