#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the experiment runner's JSON output.

EXPERIMENTS.md (referenced by src/trace/presets.hh) is the calibration
report: the measured values behind the workload presets, regenerated
from the same JSON files every bench emits with --out -- never
hand-edited. The generator runs the two calibration sweeps

  bench_table1_btb_mpki   (Table 1: BTB/L1-I MPKI, no prefetch)
  bench_fig7_speedup      (Fig 7: scheme speedups over baseline)

plus a probed six-scheme grid through `shotgun-submit
--uarch-report` for the stall-attribution table, and formats their
JSON into markdown tables. Determinism makes this reproducible: the
same build regenerates the same file byte for byte.

Usage:
  scripts/regen_experiments.py [--build-dir build] [--quick]
      [--jobs N] [--out EXPERIMENTS.md]
"""

import argparse
import json
import math
import pathlib
import subprocess
import sys

WORKLOAD_ORDER = ["nutch", "streaming", "apache", "zeus", "oracle", "db2"]
PAPER_TABLE1 = {
    "nutch": 2.5,
    "streaming": 14.5,
    "apache": 23.7,
    "zeus": 14.6,
    "oracle": 45.1,
    "db2": 40.2,
}


# Every field a runner/shotgun-submit result row may carry. "windows"
# marks a result stitched from that many simulation windows
# (--window-shards); stitched results are numerically identical to
# monolithic ones, so the tables consume them like any other row.
KNOWN_ROW_FIELDS = {
    "workload", "label", "instructions", "cycles", "ipc",
    "btb_mpki", "l1i_mpki", "mispredicts_per_ki", "fe_stall_cycles",
    "stall_icache", "stall_btb_resolve", "stall_misfetch",
    "stall_mispredict", "prefetch_accuracy", "avg_l1d_fill_cycles",
    "prefetches_issued", "storage_bits", "speedup", "stall_coverage",
    "windows",
}

# The subset the table generators below actually read.
REQUIRED_ROW_FIELDS = {"workload", "label", "btb_mpki", "l1i_mpki"}


def validate_rows(doc, source):
    """Fail with a clear message on schema drift, not a KeyError."""
    if not isinstance(doc, dict) or "rows" not in doc:
        sys.exit(f"{source}: not a runner result file (no \"rows\")")
    for i, row in enumerate(doc["rows"]):
        unknown = sorted(set(row) - KNOWN_ROW_FIELDS)
        if unknown:
            sys.exit(
                f"{source}: row {i} has unknown field(s) "
                f"{', '.join(unknown)} -- the runner JSON schema "
                f"moved; teach KNOWN_ROW_FIELDS in {__file__} about "
                f"them (and the tables, if they matter)")
        missing = sorted(REQUIRED_ROW_FIELDS - set(row))
        if missing:
            sys.exit(
                f"{source}: row {i} is missing required field(s) "
                f"{', '.join(missing)}")


def run_bench(build_dir, name, out_base, args, jobs):
    binary = build_dir / name
    if not binary.exists():
        sys.exit(f"{binary} not built (cmake --build {build_dir} first)")
    cmd = [str(binary), "--no-progress", "--out", str(out_base)]
    if jobs:  # 0 = bench default (all cores); the flag rejects 0.
        cmd += ["--jobs", str(jobs)]
    cmd += args
    print("+", " ".join(cmd), file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(f"{out_base}.json") as f:
        doc = json.load(f)
    validate_rows(doc, f"{out_base}.json")
    return doc


UARCH_SCHEMES = ["baseline", "fdip", "boomerang", "confluence",
                 "shotgun", "rdip"]
UARCH_STALLS = [
    # (report field, column header)
    ("active_cycles", "active"),
    ("stall_icache_miss", "icache"),
    ("stall_btb_miss", "btb"),
    ("stall_redirect", "redirect"),
    ("stall_ftq_empty", "ftq-empty"),
    ("stall_backend_pressure", "backend"),
    ("stall_prefetch_in_flight", "pf-wait"),
]


def run_uarch_report(build_dir, work, warmup, measure, jobs):
    """Probed six-scheme grid; returns the --uarch-report document."""
    binary = build_dir / "shotgun-submit"
    if not binary.exists():
        sys.exit(f"{binary} not built (cmake --build {build_dir} first)")
    report = work / "uarch_report.json"
    cmd = [str(binary), "--local", "--workload", "nutch",
           "--schemes", ",".join(UARCH_SCHEMES),
           "--warmup", str(warmup), "--instructions", str(measure),
           "--no-progress", "--out", str(work / "uarch_grid"),
           "--uarch-report", str(report)]
    if jobs:
        cmd += ["--jobs", str(jobs)]
    print("+", " ".join(cmd), file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(report) as f:
        doc = json.load(f)
    if not doc.get("conserves", False):
        sys.exit(f"{report}: conservation invariant violated -- "
                 f"some measured cycle is unattributed or "
                 f"double-charged (simulator bug)")
    return doc


def rows_by_workload(doc):
    by = {}
    for row in doc["rows"]:
        by.setdefault(row["workload"], {})[row["label"]] = row
    return by


def lookup(by, workload, label, source):
    try:
        return by[workload][label]
    except KeyError:
        sys.exit(f"{source}: no row for ({workload}, {label}); "
                 f"was the bench run with a workload filter?")


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--quick", action="store_true",
                        help="1M measured / 0.5M warm-up instructions")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel data points (0 = all cores)")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()

    root = pathlib.Path(__file__).resolve().parent.parent
    build_dir = (root / args.build_dir).resolve()
    work = build_dir / "experiments"
    work.mkdir(parents=True, exist_ok=True)

    lengths = ["--quick"] if args.quick else []
    warmup, measure = (500000, 1000000) if args.quick \
        else (2000000, 5000000)
    table1 = rows_by_workload(run_bench(
        build_dir, "bench_table1_btb_mpki", work / "table1_btb_mpki",
        lengths, args.jobs))
    fig7 = rows_by_workload(run_bench(
        build_dir, "bench_fig7_speedup", work / "fig7_speedup",
        lengths, args.jobs))
    uarch = run_uarch_report(build_dir, work, warmup, measure,
                             args.jobs)

    out = []
    out.append("# EXPERIMENTS — measured calibration values")
    out.append("")
    out.append("Generated by `scripts/regen_experiments.py` from the")
    out.append("experiment runner's JSON output — do not hand-edit;")
    out.append("rerun the script after any change that moves the")
    out.append("numbers. Runs are deterministic, so a given build")
    out.append("regenerates this file byte for byte.")
    out.append("")
    out.append(f"Run lengths: {warmup} warm-up + {measure} measured")
    out.append("instructions per data point.")
    out.append("")
    out.append("## Table 1 — BTB MPKI, 2K-entry BTB, no prefetching")
    out.append("")
    out.append("Calibration targets from the paper alongside the")
    out.append("measured values of the synthetic presets"
               " (`src/trace/presets.cc`).")
    out.append("")
    out.append("| Workload | BTB MPKI (measured) | BTB MPKI (paper) |"
               " L1-I MPKI (measured) |")
    out.append("|---|---|---|---|")
    for name in WORKLOAD_ORDER:
        row = lookup(table1, name, "baseline", "table1_btb_mpki")
        out.append(
            f"| {name} | {row['btb_mpki']:.1f} |"
            f" {PAPER_TABLE1[name]:.1f} | {row['l1i_mpki']:.1f} |")
    out.append("")
    out.append("## Figure 7 — speedup over the no-prefetch baseline")
    out.append("")
    out.append("Paper shape: Shotgun ~1.32 average, ~5% over both")
    out.append("Boomerang and Confluence, the Boomerang gap largest")
    out.append("on the OLTP workloads.")
    out.append("")
    schemes = ["confluence", "boomerang", "shotgun"]
    out.append("| Workload | " + " | ".join(s.capitalize()
                                            for s in schemes) + " |")
    out.append("|---|" + "---|" * len(schemes))
    per_scheme = {s: [] for s in schemes}
    for name in WORKLOAD_ORDER:
        cells = []
        for scheme in schemes:
            row = lookup(fig7, name, scheme, "fig7_speedup")
            if "speedup" not in row:
                sys.exit(f"fig7_speedup: ({name}, {scheme}) row has "
                         f"no speedup (baseline missing from grid?)")
            speedup = row["speedup"]
            per_scheme[scheme].append(speedup)
            cells.append(f"{speedup:.3f}")
        out.append(f"| {name} | " + " | ".join(cells) + " |")
    out.append("| **geomean** | " +
               " | ".join(f"**{geomean(per_scheme[s]):.3f}**"
                          for s in schemes) + " |")
    out.append("")
    out.append("## Stall attribution — % of measured cycles, nutch")
    out.append("")
    out.append("Cycle-exact attribution from the uarch probes")
    out.append("(`src/obs/README.md`, \"uarch probes\"): every")
    out.append("measured cycle is active or charged to exactly one")
    out.append("stall cause, so each row sums to 100% -- the")
    out.append("conservation invariant, asserted by the generator.")
    out.append("")
    out.append("| Scheme | " +
               " | ".join(header for _, header in UARCH_STALLS) +
               " |")
    out.append("|---|" + "---|" * len(UARCH_STALLS))
    uarch_rows = {row["label"]: row for row in uarch["rows"]}
    for scheme in UARCH_SCHEMES:
        if scheme not in uarch_rows:
            sys.exit(f"uarch report: no row for scheme {scheme}")
        row = uarch_rows[scheme]
        cycles = row["cycles"]
        cells = [f"{100.0 * row['uarch'][field] / cycles:.1f}"
                 for field, _ in UARCH_STALLS]
        out.append(f"| {scheme} | " + " | ".join(cells) + " |")
    out.append("")
    out.append("## Reproducing")
    out.append("")
    out.append("```sh")
    out.append("cmake -B build -S . && cmake --build build -j")
    out.append("scripts/regen_experiments.py" +
               (" --quick" if args.quick else ""))
    out.append("```")
    out.append("")
    out.append("The same grids can be run through the simulation")
    out.append("service (`shotgun-serve`/`shotgun-submit`, see")
    out.append("`src/service/README.md`); service results are")
    out.append("byte-identical to the in-process runs this file is")
    out.append("generated from.")

    out_path = root / args.out
    out_path.write_text("\n".join(out) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)


if __name__ == "__main__":
    main()
