#!/usr/bin/env bash
# Run the repo's static-analysis gate:
#
#   1. shotgun-lint (tools/lint/): the four invariant checks --
#      clone-completeness, determinism-hazards, codec-coverage,
#      protocol-optional-discipline. Any unsuppressed finding fails.
#   2. clang-tidy (bugprone-*/performance-*/concurrency-*, .clang-tidy)
#      over src/, driven by the CMake-exported compile_commands.json.
#      Skipped with a notice when clang-tidy or the compilation
#      database is unavailable; set LINT_TIDY_STRICT=1 to fail on
#      tidy findings (the CI lint job does).
#
# Usage: scripts/run_lint.sh [extra shotgun-lint args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

echo "== shotgun-lint =="
python3 tools/lint/shotgun_lint.py --root . "$@"

echo "== clang-tidy =="
if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "clang-tidy not installed; skipped"
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "$BUILD_DIR/compile_commands.json not found (configure with" \
         "cmake first); skipped"
else
    TIDY_RC=0
    find src -name '*.cc' -print0 | sort -z | \
        xargs -0 -P "$(nproc)" -n 4 \
            clang-tidy -p "$BUILD_DIR" --quiet || TIDY_RC=$?
    if [ "$TIDY_RC" -ne 0 ]; then
        if [ "${LINT_TIDY_STRICT:-0}" = "1" ]; then
            echo "clang-tidy findings (strict mode)" >&2
            exit "$TIDY_RC"
        fi
        echo "clang-tidy reported findings (advisory; set" \
             "LINT_TIDY_STRICT=1 to fail on them)" >&2
    fi
fi

echo "lint OK"
