#!/usr/bin/env bash
# Smoke test: configure, build, run the unit/integration test suite,
# exercise the parallel experiment runner end-to-end with one quick
# bench sweep that must emit JSON/CSV results, then record a trace and
# verify replaying it (standalone and through a bench grid) works.
#
# Usage: scripts/smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== bench smoke (fig7, --quick --jobs 2) =="
OUT="$BUILD_DIR/smoke/fig7_speedup"
"$BUILD_DIR/bench_fig7_speedup" --quick --jobs 2 --workload nutch \
    --no-progress --out "$OUT"

for ext in json csv; do
    test -s "$OUT.$ext" || {
        echo "missing result file $OUT.$ext" >&2
        exit 1
    }
done
grep -q '"experiment": "fig7_speedup"' "$OUT.json"
grep -q '"label": "shotgun"' "$OUT.json"

echo "== trace record -> replay -> verify =="
TRACE="$BUILD_DIR/smoke/nutch.trace"
"$BUILD_DIR/shotgun-trace" record nutch "$TRACE" \
    --warmup 100000 --instructions 200000
"$BUILD_DIR/shotgun-trace" info "$TRACE" | grep -q "workload.*nutch"
"$BUILD_DIR/shotgun-trace" replay "$TRACE" \
    --warmup 100000 --instructions 200000 --scheme shotgun

# Sweep the recorded trace through a bench grid...
TRACE_OUT="$BUILD_DIR/smoke/fig7_trace"
"$BUILD_DIR/bench_fig7_speedup" --workload "trace:$TRACE" \
    --warmup 100000 --instructions 200000 --jobs 2 --no-progress \
    --out "$TRACE_OUT"
grep -q '"workload": "nutch"' "$TRACE_OUT.json"

# ...and verify replay is bit-identical to live generation
# (trace_tools exits non-zero on divergence).
"$BUILD_DIR/trace_tools" nutch 100000 "$BUILD_DIR/smoke/verify.trace" \
    | grep -q "OK: file replay is bit-identical"

echo "smoke OK"
