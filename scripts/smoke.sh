#!/usr/bin/env bash
# Smoke test: configure, build, run the unit/integration test suite,
# exercise the parallel experiment runner end-to-end with one quick
# bench sweep that must emit JSON/CSV results, record a trace and
# verify replaying it (standalone and through a bench grid) works,
# then start the simulation service on a Unix socket, submit a grid
# through it, and assert the results are byte-identical to the same
# grid run in-process.
#
# Usage: scripts/smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== shotgun-lint: tree green, mutated clone ctor fails =="
# The tree must be lint-clean, and the linter must demonstrably
# still have teeth: in a scratch copy, delete one member-copy line
# from Core's clone constructor and assert shotgun-lint fails with a
# clone-completeness finding (the exact silent-restore-divergence
# bug the check exists to catch).
python3 tools/lint/shotgun_lint.py --root .

LINT_SCRATCH="$BUILD_DIR/smoke/lint_mutation"
rm -rf "$LINT_SCRATCH"
mkdir -p "$LINT_SCRATCH/tools"
cp -r src "$LINT_SCRATCH/src"
cp -r tools/lint "$LINT_SCRATCH/tools/lint"
grep -q 'stalls_(other.stalls_), btbMisses_(other.btbMisses_),' \
    "$LINT_SCRATCH/src/cpu/core.cc" || {
    echo "clone-ctor line to mutate not found in core.cc" >&2
    exit 1
}
sed -i '/stalls_(other.stalls_), btbMisses_(other.btbMisses_),/d' \
    "$LINT_SCRATCH/src/cpu/core.cc"
LINT_RC=0
python3 tools/lint/shotgun_lint.py --root "$LINT_SCRATCH" \
    > "$LINT_SCRATCH/findings.txt" 2> /dev/null || LINT_RC=$?
test "$LINT_RC" -eq 1 || {
    echo "shotgun-lint exited $LINT_RC on the mutated tree" \
         "(expected 1)" >&2
    exit 1
}
grep -q "clone-completeness.*'stalls_' of Core" \
    "$LINT_SCRATCH/findings.txt"
rm -rf "$LINT_SCRATCH"

echo "== bench smoke (fig7, --quick --jobs 2) =="
OUT="$BUILD_DIR/smoke/fig7_speedup"
"$BUILD_DIR/bench_fig7_speedup" --quick --jobs 2 --workload nutch \
    --no-progress --out "$OUT"

for ext in json csv; do
    test -s "$OUT.$ext" || {
        echo "missing result file $OUT.$ext" >&2
        exit 1
    }
done
grep -q '"experiment": "fig7_speedup"' "$OUT.json"
grep -q '"label": "shotgun"' "$OUT.json"

echo "== trace record -> replay -> verify =="
TRACE="$BUILD_DIR/smoke/nutch.trace"
"$BUILD_DIR/shotgun-trace" record nutch "$TRACE" \
    --warmup 100000 --instructions 200000
"$BUILD_DIR/shotgun-trace" info "$TRACE" | grep -q "workload.*nutch"
"$BUILD_DIR/shotgun-trace" replay "$TRACE" \
    --warmup 100000 --instructions 200000 --scheme shotgun

# Sweep the recorded trace through a bench grid...
TRACE_OUT="$BUILD_DIR/smoke/fig7_trace"
"$BUILD_DIR/bench_fig7_speedup" --workload "trace:$TRACE" \
    --warmup 100000 --instructions 200000 --jobs 2 --no-progress \
    --out "$TRACE_OUT"
grep -q '"workload": "nutch"' "$TRACE_OUT.json"

# ...and verify replay is bit-identical to live generation
# (trace_tools exits non-zero on divergence).
"$BUILD_DIR/trace_tools" nutch 100000 "$BUILD_DIR/smoke/verify.trace" \
    | grep -q "OK: file replay is bit-identical"

echo "== tool CLI conventions (--help 0 / --version 0 / bad usage 2) =="
for tool in shotgun-trace shotgun-serve shotgun-submit shotgun-coord; do
    "$BUILD_DIR/$tool" --help > /dev/null
    "$BUILD_DIR/$tool" --version | grep -q "^$tool "
    rc=0
    "$BUILD_DIR/$tool" --definitely-not-a-flag > /dev/null 2>&1 || rc=$?
    test "$rc" -eq 2 || {
        echo "$tool: bad usage exited $rc, expected 2" >&2
        exit 1
    }
done

echo "== service: serve -> submit -> verify bitwise vs in-process =="
# Every spawned daemon registers its PID here; the EXIT trap kills
# whatever is still alive, so a failing mid-script step (set -e)
# can never leak a shotgun-serve orphan onto the CI machine.
DAEMON_PIDS=()
cleanup_daemons() {
    for pid in "${DAEMON_PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup_daemons EXIT

start_serve() { # start_serve SOCKET [extra flags...]
    local sock="$1"
    shift
    "$BUILD_DIR/shotgun-serve" --listen "unix:$sock" --quiet "$@" &
    DAEMON_PIDS+=($!)
    for _ in $(seq 50); do
        [ -S "$sock" ] && return 0
        sleep 0.1
    done
    echo "daemon on $sock did not come up" >&2
    return 1
}

SOCK="$BUILD_DIR/smoke/serve.sock"
GRID=(--workload nutch --schemes fdip,shotgun
      --warmup 100000 --instructions 200000 --no-progress)

start_serve "$SOCK"
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK" --ping

# The same grid through the service, and sharded across two "workers"
# pointed at the same server, and fully in-process (--local): all
# three must produce byte-identical JSON/CSV.
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK" "${GRID[@]}" \
    --out "$BUILD_DIR/smoke/svc_remote" > /dev/null
"$BUILD_DIR/shotgun-submit" --workers "unix:$SOCK,unix:$SOCK" \
    "${GRID[@]}" --out "$BUILD_DIR/smoke/svc_sharded" > /dev/null
"$BUILD_DIR/shotgun-submit" --local "${GRID[@]}" \
    --out "$BUILD_DIR/smoke/svc_local" > /dev/null
for ext in json csv; do
    cmp "$BUILD_DIR/smoke/svc_remote.$ext" \
        "$BUILD_DIR/smoke/svc_local.$ext"
    cmp "$BUILD_DIR/smoke/svc_sharded.$ext" \
        "$BUILD_DIR/smoke/svc_local.$ext"
done

# Three submits of one 3-point grid, but only 3 distinct configs
# simulated: the repeats were served from the fingerprint cache,
# whose stats are surfaced in the status frame.
STATUS=$("$BUILD_DIR/shotgun-submit" --server "unix:$SOCK" --status)
echo "$STATUS" | grep -q '"cache_entries":3'
echo "$STATUS" | grep -q '"cache":{"entries":3'
echo "$STATUS" | grep -q '"evictions":0'

"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK" --shutdown
wait "${DAEMON_PIDS[0]}"

echo "== service: dead worker mid-fleet is survived byte-identically =="
# Three --workers endpoints, one pointing at nothing: the dead
# worker's shard must be redistributed across the two live daemons
# and the stitched output must still match --local byte for byte.
SOCK_A="$BUILD_DIR/smoke/serve_a.sock"
SOCK_B="$BUILD_DIR/smoke/serve_b.sock"
start_serve "$SOCK_A"
start_serve "$SOCK_B"
"$BUILD_DIR/shotgun-submit" \
    --workers "unix:$SOCK_A,unix:$BUILD_DIR/smoke/no-such.sock,unix:$SOCK_B" \
    "${GRID[@]}" --out "$BUILD_DIR/smoke/svc_survived" \
    2> "$BUILD_DIR/smoke/svc_survived.err" > /dev/null
grep -q "redistributed to survivors" "$BUILD_DIR/smoke/svc_survived.err"
for ext in json csv; do
    cmp "$BUILD_DIR/smoke/svc_survived.$ext" \
        "$BUILD_DIR/smoke/svc_local.$ext"
done

echo "== windowed simulation: record -> index -> 3-daemon fleet =="
# One heavy workload split into 3 measurement windows distributed
# across a 3-daemon fleet, with one daemon killed mid-run: the lost
# windows are re-simulated on the survivors and the stitched result
# must match the monolithic run numerically -- the CSVs (which carry
# every metric) are compared byte for byte. The index tool is
# exercised first (build + inspect; full-coverage windows re-simulate
# their prefix for exactness, so the .idx serves the sampled mode).
WTRACE="$BUILD_DIR/smoke/window.trace"
"$BUILD_DIR/shotgun-trace" record nutch "$WTRACE" \
    --warmup 100000 --instructions 200000
"$BUILD_DIR/shotgun-trace" index "$WTRACE" --every 4096
"$BUILD_DIR/shotgun-trace" index "$WTRACE" --show \
    | grep -q "checkpoints"
test -s "$WTRACE.idx" || {
    echo "missing trace window index $WTRACE.idx" >&2
    exit 1
}

WGRID=(--workload "trace:$WTRACE" --schemes shotgun
       --warmup 100000 --instructions 200000 --no-progress)
SOCK_W1="$BUILD_DIR/smoke/serve_w1.sock"
SOCK_W2="$BUILD_DIR/smoke/serve_w2.sock"
SOCK_W3="$BUILD_DIR/smoke/serve_w3.sock"
start_serve "$SOCK_W1"
start_serve "$SOCK_W2"
start_serve "$SOCK_W3"
VICTIM_PID="${DAEMON_PIDS[-1]}"

"$BUILD_DIR/shotgun-submit" --local "${WGRID[@]}" \
    --out "$BUILD_DIR/smoke/win_mono" > /dev/null

# Kill one daemon shortly after the windowed submit starts. Whether
# it dies before, during or after its windows were delivered, the
# stitched output must be the same -- that is the recovery contract.
"$BUILD_DIR/shotgun-submit" \
    --workers "unix:$SOCK_W1,unix:$SOCK_W2,unix:$SOCK_W3" \
    "${WGRID[@]}" --window-shards 3 \
    --out "$BUILD_DIR/smoke/win_fleet" \
    2> "$BUILD_DIR/smoke/win_fleet.err" > /dev/null &
SUBMIT_PID=$!
sleep 0.3
kill "$VICTIM_PID" 2>/dev/null || true
wait "$SUBMIT_PID"

cmp "$BUILD_DIR/smoke/win_fleet.csv" "$BUILD_DIR/smoke/win_mono.csv"
grep -q '"windows": 3' "$BUILD_DIR/smoke/win_fleet.json"

# The same windowed grid entirely in-process matches too.
"$BUILD_DIR/shotgun-submit" --local "${WGRID[@]}" --window-shards 3 \
    --out "$BUILD_DIR/smoke/win_local" > /dev/null
cmp "$BUILD_DIR/smoke/win_local.csv" "$BUILD_DIR/smoke/win_mono.csv"

"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_W1" --shutdown
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_W2" --shutdown

echo "== fleet: coord + 3 workers, kill one, verify bitwise =="
# The same windowed grid through the coordinator fleet: three
# shotgun-serve workers register with a shotgun-coord daemon and
# steal points from its global queue; one worker is killed mid-run
# and the coordinator must requeue its in-flight points on the
# survivors, with the stitched CSV still matching the monolithic
# local run byte for byte. The coordinator writes every result
# through to an on-disk cache, exercised by the restart step below.
COORD_SOCK="$BUILD_DIR/smoke/coord.sock"
FLEET_CACHE="$BUILD_DIR/smoke/fleet_cache"
rm -rf "$FLEET_CACHE"
"$BUILD_DIR/shotgun-coord" --listen "unix:$COORD_SOCK" --quiet \
    --heartbeat-ms 200 --cache-dir "$FLEET_CACHE" &
DAEMON_PIDS+=($!)
for _ in $(seq 50); do
    [ -S "$COORD_SOCK" ] && break
    sleep 0.1
done
[ -S "$COORD_SOCK" ] || {
    echo "shotgun-coord did not come up" >&2
    exit 1
}

SOCK_F1="$BUILD_DIR/smoke/serve_f1.sock"
SOCK_F2="$BUILD_DIR/smoke/serve_f2.sock"
SOCK_F3="$BUILD_DIR/smoke/serve_f3.sock"
for i in 1 2 3; do
    eval "sock=\$SOCK_F$i"
    start_serve "$sock" --coordinator "unix:$COORD_SOCK" \
        --name "smoke-w$i" --heartbeat-ms 200 --jobs 1
done
FLEET_VICTIM_PID="${DAEMON_PIDS[-1]}"

"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_SOCK" \
    "${WGRID[@]}" --window-shards 3 \
    --out "$BUILD_DIR/smoke/fleet_run" > /dev/null &
SUBMIT_PID=$!
sleep 0.3
kill "$FLEET_VICTIM_PID" 2>/dev/null || true
wait "$SUBMIT_PID"
cmp "$BUILD_DIR/smoke/fleet_run.csv" "$BUILD_DIR/smoke/win_mono.csv"

# The metrics frame renders per-worker rows and fleet cache stats.
FLEET_STATUS=$("$BUILD_DIR/shotgun-submit" \
    --coordinator "unix:$COORD_SOCK" --fleet-status)
echo "$FLEET_STATUS" | grep -q "queue depth"
echo "$FLEET_STATUS" | grep -q "coordinator cache:"
echo "$FLEET_STATUS" | grep -q "smoke-w"

echo "== fleet: persistent cache answers across a coord restart =="
# Stop the whole fleet, then restart only the coordinator on the
# same --cache-dir with zero workers: the resubmitted grid must be
# answered entirely from the on-disk result cache, byte-identically.
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_F1" --shutdown
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_F2" --shutdown
"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_SOCK" --shutdown
sleep 0.3

"$BUILD_DIR/shotgun-coord" --listen "unix:$COORD_SOCK" --quiet \
    --heartbeat-ms 200 --cache-dir "$FLEET_CACHE" &
DAEMON_PIDS+=($!)
for _ in $(seq 50); do
    "$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_SOCK" \
        --ping > /dev/null 2>&1 && break
    sleep 0.1
done
"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_SOCK" \
    "${WGRID[@]}" --window-shards 3 \
    --out "$BUILD_DIR/smoke/fleet_cached" > /dev/null
cmp "$BUILD_DIR/smoke/fleet_cached.csv" "$BUILD_DIR/smoke/win_mono.csv"
"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_SOCK" \
    --fleet-status | grep -q "(no workers registered)"
"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_SOCK" --shutdown

echo "== fleet: coord + 2 workers, one cross-process trace =="
# A traced fleet run: the client mints one trace id (--trace-out),
# the coordinator stamps it on every stolen point, and the workers
# ship their simulation spans back, so the coordinator's trace file
# holds spans from all three processes under the one id -- while the
# grid's CSV output stays byte-identical to the untraced local run
# (tracing is trajectory-invisible by contract, src/obs/README.md).
COORD_T_SOCK="$BUILD_DIR/smoke/coord_t.sock"
COORD_TRACE="$BUILD_DIR/smoke/coord_trace.json"
SUBMIT_TRACE="$BUILD_DIR/smoke/submit_trace.json"
"$BUILD_DIR/shotgun-coord" --listen "unix:$COORD_T_SOCK" --quiet \
    --heartbeat-ms 200 --trace-out "$COORD_TRACE" &
COORD_T_PID=$!
DAEMON_PIDS+=($COORD_T_PID)
for _ in $(seq 50); do
    [ -S "$COORD_T_SOCK" ] && break
    sleep 0.1
done
SOCK_T1="$BUILD_DIR/smoke/serve_t1.sock"
SOCK_T2="$BUILD_DIR/smoke/serve_t2.sock"
start_serve "$SOCK_T1" --coordinator "unix:$COORD_T_SOCK" \
    --name trace-w1 --heartbeat-ms 200 --jobs 1
start_serve "$SOCK_T2" --coordinator "unix:$COORD_T_SOCK" \
    --name trace-w2 --heartbeat-ms 200 --jobs 1

"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_T_SOCK" \
    "${GRID[@]}" --trace-out "$SUBMIT_TRACE" \
    --out "$BUILD_DIR/smoke/traced_run" > /dev/null
cmp "$BUILD_DIR/smoke/traced_run.csv" "$BUILD_DIR/smoke/svc_local.csv"
grep -q '"timing"' "$BUILD_DIR/smoke/traced_run.json"

"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_T1" --shutdown
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_T2" --shutdown
"$BUILD_DIR/shotgun-submit" --coordinator "unix:$COORD_T_SOCK" \
    --shutdown
wait "$COORD_T_PID" 2>/dev/null || true

# Both trace files are valid JSON...
python3 -m json.tool "$COORD_TRACE" > /dev/null
python3 -m json.tool "$SUBMIT_TRACE" > /dev/null
# ...the coordinator's holds lanes from all three processes and the
# full per-point phase span set...
for proc in coord trace-w1 trace-w2; do
    grep -q "\"name\":\"$proc\"" "$COORD_TRACE"
done
for span in decode measure queued emit; do
    grep -q "\"name\":\"$span\"" "$COORD_TRACE"
done
grep -Eq '"name":"(warmup|restore)"' "$COORD_TRACE"
# ...and every span everywhere carries the client's single trace id.
TRACE_IDS=$(grep -o '"trace_id":[0-9]*' "$COORD_TRACE" \
                "$SUBMIT_TRACE" | cut -d: -f3 | sort -u)
test "$(echo "$TRACE_IDS" | wc -l)" -eq 1 || {
    echo "expected one shared trace id, got: $TRACE_IDS" >&2
    exit 1
}

echo "== bench_sim_throughput emits machine-readable JSON =="
"$BUILD_DIR/bench_sim_throughput" --instructions 200000 \
    --warmup 50000 --repeats 1 \
    --out "$BUILD_DIR/smoke/sim_throughput.json" 2> /dev/null
grep -q '"instructions_per_second"' \
    "$BUILD_DIR/smoke/sim_throughput.json"
grep -q '"cycles_per_second"' \
    "$BUILD_DIR/smoke/sim_throughput.json"
grep -q '"scheme":"batched-grid"' \
    "$BUILD_DIR/smoke/sim_throughput.json"
grep -q '"scheme":"shotgun+tracing"' \
    "$BUILD_DIR/smoke/sim_throughput.json"
grep -q '"scheme":"shotgun+uarch-probes"' \
    "$BUILD_DIR/smoke/sim_throughput.json"

echo "== one-pass grid: shared decode + warmed checkpoints, bitwise =="
# A 6-scheme grid over one recorded trace must be byte-identical to
# running the six points one at a time in separate processes (where
# no cross-point reuse is possible): the cohort/checkpoint machinery
# is trajectory-invisible by contract (src/sim/README.md).
ALL_SCHEMES=baseline,fdip,boomerang,confluence,shotgun,rdip
CGRID=(--workload "trace:$WTRACE" --warmup 100000
       --instructions 200000 --no-progress)
"$BUILD_DIR/shotgun-submit" --local "${CGRID[@]}" \
    --schemes "$ALL_SCHEMES" \
    --out "$BUILD_DIR/smoke/cohort_grid" > /dev/null
head -n 1 "$BUILD_DIR/smoke/cohort_grid.csv" \
    > "$BUILD_DIR/smoke/point_grid.csv"
for scheme in ${ALL_SCHEMES//,/ }; do
    "$BUILD_DIR/shotgun-submit" --local "${CGRID[@]}" \
        --schemes "$scheme" \
        --out "$BUILD_DIR/smoke/point_$scheme" > /dev/null
    # Keep only the point's own row: a single-scheme submit also
    # simulates the implicit baseline for the speedup column.
    tail -n 1 "$BUILD_DIR/smoke/point_$scheme.csv" \
        >> "$BUILD_DIR/smoke/point_grid.csv"
done
cmp "$BUILD_DIR/smoke/cohort_grid.csv" "$BUILD_DIR/smoke/point_grid.csv"

# Through the service the status frame proves the reuse: the grid
# decoded the trace once and simulated each scheme's warmup once
# (6 misses, one per checkpoint key); a second grid with a shorter
# measure phase shares those keys and restores all six warmups.
SOCK_G="$BUILD_DIR/smoke/serve_g.sock"
start_serve "$SOCK_G"
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_G" "${CGRID[@]}" \
    --schemes "$ALL_SCHEMES" \
    --out "$BUILD_DIR/smoke/cohort_svc" > /dev/null
cmp "$BUILD_DIR/smoke/cohort_svc.csv" "$BUILD_DIR/smoke/cohort_grid.csv"
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_G" --status \
    | grep -q '"checkpoint":{"entries":6,[^}]*"hits":0,"misses":6'
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_G" --status \
    | grep -q '"traces":{"entries":1,[^}]*"decodes":1'
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_G" "${CGRID[@]}" \
    --schemes "$ALL_SCHEMES" --instructions 100000 \
    --out "$BUILD_DIR/smoke/cohort_rerun" > /dev/null
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_G" --status \
    | grep -q '"checkpoint":{"entries":6,[^}]*"hits":6,"misses":6'
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_G" --shutdown

# A bounded cache on a live daemon evicts instead of growing: after
# a grid bigger than the budget, the status frame reports evictions.
SOCK_C="$BUILD_DIR/smoke/serve_c.sock"
start_serve "$SOCK_C" --cache-bytes 600
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_C" "${GRID[@]}" \
    > /dev/null
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_C" --status \
    | grep -q '"evictions":[1-9]'

echo "== uarch probes: report conserves, outputs trajectory-invisible =="
# Probed local run: --uarch-report must be valid JSON whose
# conservation flag holds (every measured cycle is active or charged
# to exactly one stall cause), the CSV must be byte-identical to the
# probe-free run of the same grid (probes are observer-only,
# src/obs/README.md "uarch probes"), and the row JSON gains its
# optional "uarch" member only when probed.
UARCH_REPORT="$BUILD_DIR/smoke/uarch_report.json"
"$BUILD_DIR/shotgun-submit" --local "${GRID[@]}" \
    --out "$BUILD_DIR/smoke/uarch_local" \
    --uarch-report "$UARCH_REPORT" > /dev/null
python3 -m json.tool "$UARCH_REPORT" > /dev/null
grep -q '"conserves":true' "$UARCH_REPORT"
if grep -q '"conserves":false' "$UARCH_REPORT"; then
    echo "uarch report has a non-conserved row" >&2
    exit 1
fi
cmp "$BUILD_DIR/smoke/uarch_local.csv" "$BUILD_DIR/smoke/svc_local.csv"
grep -q '"uarch"' "$BUILD_DIR/smoke/uarch_local.json"
if grep -q '"uarch"' "$BUILD_DIR/smoke/svc_local.json"; then
    echo "probe-free row JSON must not carry a uarch member" >&2
    exit 1
fi

# The same probed grid sharded across two workers: the breakdown
# rides the result frames' optional "uarch" member home, so the
# fleet's report (and CSV) must match the local ones byte for byte.
"$BUILD_DIR/shotgun-submit" --workers "unix:$SOCK_A,unix:$SOCK_B" \
    "${GRID[@]}" --out "$BUILD_DIR/smoke/uarch_fleet" \
    --uarch-report "$BUILD_DIR/smoke/uarch_fleet_report.json" \
    > /dev/null
cmp "$BUILD_DIR/smoke/uarch_fleet.csv" "$BUILD_DIR/smoke/svc_local.csv"
cmp "$BUILD_DIR/smoke/uarch_fleet_report.json" "$UARCH_REPORT"

"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_A" --shutdown
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_B" --shutdown
"$BUILD_DIR/shotgun-submit" --server "unix:$SOCK_C" --shutdown
wait "${DAEMON_PIDS[@]:1}" 2>/dev/null || true

echo "smoke OK"
