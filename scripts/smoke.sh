#!/usr/bin/env bash
# Smoke test: configure, build, run the unit/integration test suite,
# then exercise the parallel experiment runner end-to-end with one
# quick bench sweep that must emit JSON/CSV results.
#
# Usage: scripts/smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== bench smoke (fig7, --quick --jobs 2) =="
OUT="$BUILD_DIR/smoke/fig7_speedup"
"$BUILD_DIR/bench_fig7_speedup" --quick --jobs 2 --workload nutch \
    --no-progress --out "$OUT"

for ext in json csv; do
    test -s "$OUT.$ext" || {
        echo "missing result file $OUT.$ext" >&2
        exit 1
    }
done
grep -q '"experiment": "fig7_speedup"' "$OUT.json"
grep -q '"label": "shotgun"' "$OUT.json"

echo "smoke OK"
